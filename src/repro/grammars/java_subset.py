"""Java subset in PEG mode — the Java1.5 analogue.

Characteristic hazards carried over from the paper's native Java1.5
grammar (which also ran in PEG mode):

* class members: field vs method vs constructor share the
  ``modifier* type ID`` prefix — regular lookahead (cyclic DFA) usually
  suffices;
* statements: local variable declaration vs expression statement share
  a ``qualified-name`` prefix, and generics make the type language
  self-nested (context-free), so the decision falls back to
  backtracking — the PEG-mode synpreds earn their keep here;
* the rest of the grammar is overwhelmingly LL(1), which is what makes
  Table 2's "most decisions are LL(1)" row come out.
"""

from __future__ import annotations

import random

GRAMMAR = r"""
grammar JavaSub;
options { backtrack=true; memoize=true; }

compilation_unit : package_decl? import_decl* type_decl* ;

package_decl : 'package' qualified_name ';' ;

import_decl : 'import' 'static'? qualified_name ('.' '*')? ';' ;

qualified_name : ID ('.' ID)* ;

type_decl
    : class_decl
    | interface_decl
    | enum_decl
    | ';'
    ;

enum_decl
    : modifier* 'enum' ID ('implements' type_list)?
      '{' ID (',' ID)* (';' member*)? '}'
    ;

annotation : '@' qualified_name ('(' expression ')')? ;

class_decl
    : modifier* 'class' ID type_params?
      ('extends' jtype)? ('implements' type_list)? class_body
    ;

interface_decl
    : modifier* 'interface' ID type_params? ('extends' type_list)? class_body
    ;

modifier
    : 'public' | 'protected' | 'private' | 'static' | 'final'
    | 'abstract' | 'native' | 'synchronized' | 'transient' | 'volatile'
    | annotation
    ;

type_params : '<' ID (',' ID)* '>' ;

type_list : jtype (',' jtype)* ;

class_body : '{' member* '}' ;

member
    : field_decl
    | method_decl
    | ctor_decl
    | class_decl
    | ';'
    ;

field_decl : modifier* jtype var_declarator (',' var_declarator)* ';' ;

var_declarator : ID ('[' ']')* ('=' var_init)? ;

var_init
    : expression
    | array_init
    ;

array_init : '{' (var_init (',' var_init)*)? '}' ;

method_decl
    : modifier* type_params? result_type ID '(' formal_params? ')'
      ('throws' type_list)? (block | ';')
    ;

result_type
    : jtype
    | 'void'
    ;

ctor_decl : modifier* ID '(' formal_params? ')' block ;

formal_params : formal_param (',' formal_param)* ;

formal_param : 'final'? jtype ID ('[' ']')* ;

jtype
    : qualified_name type_args? ('[' ']')*
    | primitive_type ('[' ']')*
    ;

primitive_type
    : 'boolean' | 'byte' | 'char' | 'short' | 'int' | 'long'
    | 'float' | 'double'
    ;

type_args : '<' jtype (',' jtype)* '>' ;

block : '{' block_statement* '}' ;

block_statement
    : local_var_decl ';'
    | statement
    | class_decl
    ;

local_var_decl : 'final'? jtype var_declarator (',' var_declarator)* ;

statement
    : block
    | 'if' par_expression statement ('else' statement)?
    | 'for' '(' for_init? ';' expression? ';' expression_list? ')' statement
    | 'while' par_expression statement
    | 'do' statement 'while' par_expression ';'
    | 'try' block ('catch' '(' formal_param ')' block)* ('finally' block)?
    | 'switch' par_expression '{' switch_group* '}'
    | 'return' expression? ';'
    | 'throw' expression ';'
    | 'break' ID? ';'
    | 'continue' ID? ';'
    | ';'
    | statement_expression ';'
    | ID ':' statement
    ;

switch_group : ('case' expression | 'default') ':' block_statement* ;

for_init
    : local_var_decl
    | expression_list
    ;

par_expression : '(' expression ')' ;

expression_list : expression (',' expression)* ;

statement_expression : expression ;

expression : conditional_expr (assign_op expression)? ;

assign_op : '=' | '+=' | '-=' | '*=' | '/=' | '%=' ;

conditional_expr : logical_or ('?' expression ':' expression)? ;

logical_or : logical_and ('||' logical_and)* ;

logical_and : equality_expr ('&&' equality_expr)* ;

equality_expr : relational_expr (('==' | '!=') relational_expr)* ;

relational_expr
    : shift_expr (('<=' | '>=' | '<' | '>') shift_expr
                  | 'instanceof' jtype)*
    ;

shift_expr : additive_expr (('<<' | '>>') additive_expr)* ;

additive_expr : multiplicative_expr (('+' | '-') multiplicative_expr)* ;

multiplicative_expr : unary_expr (('*' | '/' | '%') unary_expr)* ;

unary_expr
    : ('+' | '-' | '++' | '--' | '!' | '~') unary_expr
    | ('(' jtype ')' unary_expr)=> '(' jtype ')' unary_expr
    | postfix_expr
    ;

postfix_expr : primary postfix_suffix* ;

postfix_suffix
    : '.' ID arguments?
    | '[' expression ']'
    | '++'
    | '--'
    ;

primary
    : par_expression
    | 'this' arguments?
    | 'super' '.' ID arguments?
    | literal
    | 'new' creator
    | ID arguments?
    ;

creator : qualified_name type_args? (arguments | array_dims) ;

array_dims : ('[' expression ']')+ ('[' ']')* ;

arguments : '(' expression_list? ')' ;

literal
    : INT_LIT | FLOAT_LIT | CHAR_LIT | STRING_LIT
    | 'true' | 'false' | 'null'
    ;

ID : [a-zA-Z_$] [a-zA-Z0-9_$]* ;
INT_LIT : [0-9]+ [lL]? ;
FLOAT_LIT : [0-9]+ '.' [0-9]+ [fFdD]? ;
CHAR_LIT : '\'' ~['] '\'' ;
STRING_LIT : '"' (~["])* '"' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '/' '/' (~[\n])* -> skip ;
"""

SAMPLE = r"""
package demo.app;

import java.util.List;

public class Greeter {
    private static int count;
    private List<String> names;

    public Greeter(int seed) {
        count = seed;
    }

    public int greet(String name, int times) {
        int total = 0;
        for (int i = 0; i < times; i += 1) {
            total = total + name.length();
            if (total > 100) {
                break;
            }
        }
        return total;
    }
}
"""

_TYPES = ["int", "long", "double", "boolean", "String", "List<String>",
          "Map<String, Integer>", "int[]"]
_NAMES = ["alpha", "beta", "gamma", "delta", "index", "total", "count",
          "buffer", "result", "limit", "name", "value"]
_MODS = ["public", "private", "protected", "static", "final"]


def _expr(rng: random.Random, depth: int = 0) -> str:
    if depth > 2 or rng.random() < 0.45:
        c = rng.random()
        if c < 0.4:
            return rng.choice(_NAMES)
        if c < 0.7:
            return str(rng.randint(0, 999))
        if c < 0.85:
            return "%s.%s(%s)" % (rng.choice(_NAMES), rng.choice(_NAMES),
                                  rng.choice(_NAMES))
        return '"%s"' % rng.choice(_NAMES)
    op = rng.choice(["+", "-", "*", "<", "==", "&&", "||"])
    return "%s %s %s" % (_expr(rng, depth + 1), op, _expr(rng, depth + 1))


def _statement(rng: random.Random, depth: int = 0) -> str:
    indent = "        " + "    " * depth
    c = rng.random()
    if c < 0.3 or depth >= 2:
        return "%s%s = %s;" % (indent, rng.choice(_NAMES), _expr(rng))
    if c < 0.45:
        return "%sint %s_%d = %s;" % (indent, rng.choice(_NAMES),
                                      rng.randint(0, 99), _expr(rng))
    if c < 0.6:
        return "%sif (%s) {\n%s\n%s}" % (indent, _expr(rng),
                                         _statement(rng, depth + 1), indent)
    if c < 0.7:
        return "%swhile (%s) {\n%s\n%s}" % (indent, _expr(rng),
                                            _statement(rng, depth + 1), indent)
    if c < 0.8:
        return "%sfor (int i = 0; i < %d; i += 1) {\n%s\n%s}" % (
            indent, rng.randint(2, 50), _statement(rng, depth + 1), indent)
    if c < 0.9:
        return "%sreturn %s;" % (indent, _expr(rng))
    return "%s%s.%s(%s);" % (indent, rng.choice(_NAMES), rng.choice(_NAMES),
                             _expr(rng))


def _method(rng: random.Random, i: int) -> str:
    body = "\n".join(_statement(rng) for _ in range(rng.randint(2, 7)))
    return ("    %s %s %s_%d(%s a, int b) {\n%s\n        return a;\n    }"
            % (rng.choice(_MODS), "int", rng.choice(_NAMES), i, "int", body))


def _field(rng: random.Random, i: int) -> str:
    init = " = %s" % _expr(rng) if rng.random() < 0.5 else ""
    return "    %s %s %s_%d%s;" % (rng.choice(_MODS), rng.choice(_TYPES),
                                   rng.choice(_NAMES), i, init)


def generate_program(units: int, seed: int = 0) -> str:
    """Generate a compilation unit with ~``units`` members across classes."""
    rng = random.Random(seed)
    classes = []
    members_left = units
    class_index = 0
    while members_left > 0:
        if rng.random() < 0.12:
            names = ", ".join("%s_%d" % (rng.choice(_NAMES).upper(), i)
                              for i in range(rng.randint(2, 5)))
            classes.append("public enum E%d { %s }" % (class_index, names))
            class_index += 1
            members_left -= 1
            continue
        n = min(members_left, rng.randint(3, 8))
        members_left -= n
        members = []
        for i in range(n):
            prefix = "    @Override\n" if rng.random() < 0.15 else ""
            if rng.random() < 0.4:
                members.append(prefix + _field(rng, i))
            else:
                members.append(prefix + _method(rng, i))
        classes.append("public class C%d {\n%s\n}" % (class_index,
                                                      "\n\n".join(members)))
        class_index += 1
    header = "package bench.gen;\n\nimport java.util.List;\n"
    return header + "\n\n" + "\n\n".join(classes) + "\n"
