"""C subset in PEG mode — the RatsC analogue.

The characteristic hazard (Section 6.2): C declarations and function
definitions "look the same from the left edge" — ``int f();`` vs
``int f() { ... }`` — so the ``external_decl`` decision must speculate
across the entire declarator (and, failing that, the whole definition),
which is exactly why RatsC shows the deepest backtracks in Table 3
(7,968 tokens: an entire function body).  ``backtrack=true`` puts a
synpred on every production like Rats! does.
"""

from __future__ import annotations

import random

GRAMMAR = r"""
grammar RatsC;
options { backtrack=true; memoize=true; }

translation_unit : external_decl+ ;

external_decl
    : function_def
    | declaration
    ;

function_def
    : decl_specs declarator compound_stmt
    ;

declaration
    : decl_specs init_declarator_list? ';'
    ;

decl_specs
    : storage_class? type_spec type_qualifier*
    ;

storage_class : 'static' | 'extern' | 'typedef' ;

type_qualifier : 'const' | 'volatile' ;

type_spec
    : 'void' | 'char' | 'short' | 'int' | 'long' | 'float' | 'double'
    | 'unsigned' type_spec
    | 'signed' type_spec
    | 'struct' ID struct_body?
    | ID
    ;

struct_body : '{' struct_decl* '}' ;

struct_decl : decl_specs declarator (',' declarator)* ';' ;

init_declarator_list : init_declarator (',' init_declarator)* ;

init_declarator : declarator ('=' initializer)? ;

initializer
    : assignment_expr
    | '{' initializer (',' initializer)* '}'
    ;

declarator : pointer? direct_declarator ;

pointer : '*' type_qualifier* pointer? ;

direct_declarator
    : ID declarator_suffix*
    | '(' declarator ')' declarator_suffix*
    ;

declarator_suffix
    : '[' constant_expr? ']'
    | '(' param_list? ')'
    ;

param_list : param_decl (',' param_decl)* ;

param_decl : decl_specs declarator? ;

compound_stmt : '{' block_item* '}' ;

block_item
    : declaration
    | statement
    ;

statement
    : compound_stmt
    | 'if' '(' expr ')' statement ('else' statement)?
    | 'while' '(' expr ')' statement
    | 'do' statement 'while' '(' expr ')' ';'
    | 'for' '(' expr_stmt expr_stmt expr? ')' statement
    | 'switch' '(' expr ')' '{' switch_section* '}'
    | 'return' expr? ';'
    | 'break' ';'
    | 'continue' ';'
    | 'goto' ID ';'
    | (ID ':')=> ID ':' statement
    | expr_stmt
    ;

switch_section
    : 'case' constant_expr ':' block_item*
    | 'default' ':' block_item*
    ;

expr_stmt : expr? ';' ;

expr : assignment_expr (',' assignment_expr)* ;

assignment_expr
    : unary_expr assign_op assignment_expr
    | cond_expr
    ;

assign_op : '=' | '+=' | '-=' | '*=' | '/=' ;

cond_expr : logical_or ('?' expr ':' cond_expr)? ;

logical_or : logical_and ('||' logical_and)* ;

logical_and : equality ('&&' equality)* ;

equality : relational (('==' | '!=') relational)* ;

relational : additive (('<' | '>' | '<=' | '>=') additive)* ;

additive : multiplicative (('+' | '-') multiplicative)* ;

multiplicative : unary_expr (('*' | '/' | '%') unary_expr)* ;

unary_expr
    : ('++' | '--' | '-' | '!' | '~' | '*' | '&') unary_expr
    | 'sizeof' '(' type_spec pointer? ')'
    | postfix_expr
    ;

postfix_expr : primary_expr postfix_suffix* ;

postfix_suffix
    : '[' expr ']'
    | '(' arg_list? ')'
    | '.' ID
    | '->' ID
    | '++'
    | '--'
    ;

arg_list : assignment_expr (',' assignment_expr)* ;

primary_expr
    : ID
    | INT_LIT
    | FLOAT_LIT
    | CHAR_LIT
    | STRING_LIT
    | '(' expr ')'
    ;

constant_expr : cond_expr ;

ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT_LIT : [0-9]+ ;
FLOAT_LIT : [0-9]+ '.' [0-9]+ ;
CHAR_LIT : '\'' ~['] '\'' ;
STRING_LIT : '"' (~["])* '"' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '/' '/' (~[\n])* -> skip ;
"""

SAMPLE = r"""
static int counter;

int add(int a, int b) {
    return a + b;
}

int main(void) {
    int i;
    int total = 0;
    for (i = 0; i < 10; i = i + 1) {
        total += add(total, i);
        if (total > 100) {
            break;
        }
    }
    return total;
}
"""

_TYPES = ["int", "long", "char", "double", "float", "unsigned int"]
_NAMES = ["alpha", "beta", "gamma", "delta", "idx", "total", "count", "tmp",
          "value", "result", "acc", "limit", "size", "offset", "flag"]


def _expr(rng: random.Random, depth: int = 0) -> str:
    if depth > 2 or rng.random() < 0.4:
        choice = rng.random()
        if choice < 0.5:
            return rng.choice(_NAMES)
        if choice < 0.9:
            return str(rng.randint(0, 9999))
        return "%s(%s)" % (rng.choice(_NAMES), rng.choice(_NAMES))
    op = rng.choice(["+", "-", "*", "/", "<", "==", "&&"])
    return "%s %s %s" % (_expr(rng, depth + 1), op, _expr(rng, depth + 1))


def _statement(rng: random.Random, depth: int = 0) -> str:
    indent = "    " * (depth + 1)
    kind = rng.random()
    if kind < 0.35 or depth >= 2:
        return "%s%s = %s;" % (indent, rng.choice(_NAMES), _expr(rng))
    if kind < 0.5:
        return "%sif (%s) {\n%s\n%s}" % (
            indent, _expr(rng), _statement(rng, depth + 1), indent)
    if kind < 0.6:
        return "%swhile (%s) {\n%s\n%s}" % (
            indent, _expr(rng), _statement(rng, depth + 1), indent)
    if kind < 0.7:
        return "%sfor (%s = 0; %s < %d; %s += 1) {\n%s\n%s}" % (
            indent, "idx", "idx", rng.randint(2, 64), "idx",
            _statement(rng, depth + 1), indent)
    if kind < 0.76:
        cases = "\n".join(
            "%s    case %d:\n%s\n%s        break;" % (
                indent, i, _statement(rng, depth + 2), indent)
            for i in range(rng.randint(1, 3)))
        return "%sswitch (%s) {\n%s\n%s    default:\n%s        break;\n%s}" % (
            indent, rng.choice(_NAMES), cases, indent, indent, indent)
    if kind < 0.8:
        return "%sreturn %s;" % (indent, _expr(rng))
    return "%s%s(%s);" % (indent, rng.choice(_NAMES), _expr(rng))


def generate_program(units: int, seed: int = 0) -> str:
    """Generate ~``units`` top-level declarations/definitions of C."""
    rng = random.Random(seed)
    parts = []
    for i in range(units):
        kind = rng.random()
        name = "%s_%d" % (rng.choice(_NAMES), i)
        if kind < 0.25:
            # plain declaration: the fast path of external_decl's synpred
            parts.append("%s %s;" % (rng.choice(_TYPES), name))
        elif kind < 0.35:
            parts.append("extern %s %s(%s a, %s b);" % (
                rng.choice(_TYPES), name, rng.choice(_TYPES), rng.choice(_TYPES)))
        else:
            # function definition: forces the deep backtrack
            body = "\n".join(_statement(rng) for _ in range(rng.randint(2, 8)))
            parts.append("%s %s(int a, int b) {\n%s\n    return a;\n}" % (
                rng.choice(_TYPES), name, body))
    return "\n\n".join(parts) + "\n"
