"""Second Java-style grammar in PEG mode — the RatsJava analogue.

The paper's RatsJava grammar was mechanically converted from a Rats!
module, preserving its *structure*: fewer, flatter rules than the native
ANTLR Java grammar, heavier reliance on ordered choice, and PEG mode
throughout.  This module mirrors that character: a compact Java-like
grammar where more decisions lean on the auto-inserted synpreds instead
of hand-tuned lookahead.
"""

from __future__ import annotations

import random

GRAMMAR = r"""
grammar RatsJava;
options { backtrack=true; memoize=true; }

compilation_unit : package_part? import_part* declaration* ;

package_part : 'package' name ';' ;

import_part : 'import' name ('.' '*')? ';' ;

name : ID ('.' ID)* ;

declaration
    : modifiers 'class' ID extension? class_body
    | modifiers 'interface' ID extension? class_body
    ;

modifiers : modifier* ;

modifier : 'public' | 'private' | 'protected' | 'static' | 'final' | 'abstract' ;

extension : 'extends' name ;

class_body : '{' body_decl* '}' ;

body_decl
    : modifiers type_name declarators ';'
    | modifiers type_name ID '(' params? ')' (block | ';')
    | modifiers ID '(' params? ')' block
    | ';'
    ;

declarators : declarator (',' declarator)* ;

declarator : ID ('=' expression)? ;

type_name
    : 'void'
    | 'int' dims?
    | 'boolean' dims?
    | 'char' dims?
    | 'double' dims?
    | name type_arguments? dims?
    ;

type_arguments : '<' type_name (',' type_name)* '>' ;

dims : ('[' ']')+ ;

params : param (',' param)* ;

param : type_name ID ;

block : '{' statement* '}' ;

statement
    : block
    | 'if' '(' expression ')' statement ('else' statement)?
    | 'while' '(' expression ')' statement
    | 'for' '(' statement_expr? ';' expression? ';' statement_expr? ')' statement
    | 'return' expression? ';'
    | 'break' ';'
    | 'continue' ';'
    | type_name declarators ';'
    | statement_expr ';'
    | ';'
    ;

statement_expr : expression ;

expression : ternary (('=' | '+=' | '-=') expression)? ;

ternary : disjunction ('?' expression ':' expression)? ;

disjunction : conjunction ('||' conjunction)* ;

conjunction : comparison ('&&' comparison)* ;

comparison : sum (('==' | '!=' | '<' | '>' | '<=' | '>=') sum)* ;

sum : product (('+' | '-') product)* ;

product : unary (('*' | '/' | '%') unary)* ;

unary
    : ('-' | '!' | '++' | '--') unary
    | postfix
    ;

postfix : atom suffix* ;

suffix
    : '.' ID call_args?
    | '[' expression ']'
    | '++'
    | '--'
    ;

call_args : '(' (expression (',' expression)*)? ')' ;

atom
    : ID call_args?
    | INT_LIT
    | STRING_LIT
    | 'true' | 'false' | 'null' | 'this'
    | 'new' name call_args
    | 'new' name ('[' expression ']')+
    | '(' expression ')'
    ;

ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT_LIT : [0-9]+ ;
STRING_LIT : '"' (~["])* '"' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '/' '/' (~[\n])* -> skip ;
"""

SAMPLE = r"""
package sample;

public class Counter {
    private int count = 0;

    public int bump(int by) {
        count = count + by;
        if (count > 100) {
            count = 0;
        }
        return count;
    }
}
"""

_NAMES = ["item", "node", "list", "total", "index", "cache", "next", "prev",
          "size", "head"]
_TYPES = ["int", "boolean", "double", "String", "Object"]


def _expr(rng: random.Random, depth: int = 0) -> str:
    if depth > 2 or rng.random() < 0.5:
        c = rng.random()
        if c < 0.5:
            return rng.choice(_NAMES)
        if c < 0.8:
            return str(rng.randint(0, 500))
        return "%s.%s()" % (rng.choice(_NAMES), rng.choice(_NAMES))
    op = rng.choice(["+", "-", "*", "<", "==", "&&"])
    return "%s %s %s" % (_expr(rng, depth + 1), op, _expr(rng, depth + 1))


def _statement(rng: random.Random, depth: int = 0) -> str:
    indent = "        " + "    " * depth
    c = rng.random()
    if c < 0.35 or depth >= 2:
        return "%s%s = %s;" % (indent, rng.choice(_NAMES), _expr(rng))
    if c < 0.5:
        return "%s%s %s%d = %s;" % (indent, rng.choice(_TYPES),
                                    rng.choice(_NAMES), rng.randint(0, 9),
                                    _expr(rng))
    if c < 0.65:
        return "%sif (%s) {\n%s\n%s}" % (indent, _expr(rng),
                                         _statement(rng, depth + 1), indent)
    if c < 0.8:
        return "%swhile (%s) {\n%s\n%s}" % (indent, _expr(rng),
                                            _statement(rng, depth + 1), indent)
    return "%sreturn %s;" % (indent, _expr(rng))


def generate_program(units: int, seed: int = 0) -> str:
    rng = random.Random(seed)
    classes = []
    left = units
    ci = 0
    while left > 0:
        n = min(left, rng.randint(2, 6))
        left -= n
        members = []
        for i in range(n):
            if rng.random() < 0.35:
                field_type = rng.choice(_TYPES + ["List<String>", "Map<String, Object>"])
                members.append("    private %s %s%d = %s;" % (
                    field_type, rng.choice(_NAMES), i, _expr(rng)))
            else:
                body = "\n".join(_statement(rng) for _ in range(rng.randint(2, 6)))
                members.append(
                    "    public int %s%d(int a) {\n%s\n        return a;\n    }"
                    % (rng.choice(_NAMES), i, body))
        classes.append("public class R%d {\n%s\n}" % (ci, "\n\n".join(members)))
        ci += 1
    return "package gen;\n\n" + "\n\n".join(classes) + "\n"
