"""VB.NET-style grammar — the VB.NET analogue (manual predicates, no PEG
mode).

The paper's three commercial grammars used hand-placed syntactic
predicates rather than PEG mode, and VB.NET came out the most
deterministic of the suite (95.4% fixed, 4.6% backtracking, max runtime
k of 12).  This grammar has the same temperament: keyword-led statements
make almost everything LL(1); a modifier-prefix member decision gives a
Figure-1-style cyclic DFA; two hand-written synpreds disambiguate the
``For ... = / For Each`` and indexed-assignment-vs-call forms.
"""

from __future__ import annotations

import random

GRAMMAR = r"""
grammar VbLike;
options { memoize=true; }

program : module_decl+ ;

module_decl : 'Module' ID member* 'End' 'Module' ;

member
    : vb_modifier* 'Sub' ID '(' param_list? ')' statement* 'End' 'Sub'
    | vb_modifier* 'Function' ID '(' param_list? ')' 'As' vb_type
      statement* 'End' 'Function'
    | vb_modifier* 'Dim' ID 'As' vb_type ('=' expression)?
    ;

vb_modifier : 'Public' | 'Private' | 'Friend' | 'Shared' | 'Shadows' ;

param_list : param (',' param)* ;

param : ('ByVal' | 'ByRef')? ID 'As' vb_type ;

vb_type
    : 'Integer' | 'Long' | 'Double' | 'String' | 'Boolean' | 'Object'
    | ID
    ;

statement
    : 'Dim' ID 'As' vb_type ('=' expression)?
    | 'If' expression 'Then' statement* elseif_part* else_part? 'End' 'If'
    | 'While' expression statement* 'End' 'While'
    | ('For' ID '=')=> 'For' ID '=' expression 'To' expression step_part?
      statement* 'Next' ID?
    | 'For' 'Each' ID 'In' expression statement* 'Next' ID?
    | 'Do' statement* 'Loop' ('While' | 'Until') expression
    | 'Select' 'Case' expression case_part* 'End' 'Select'
    | 'Return' expression?
    | 'Exit' ('Sub' | 'Function' | 'For' | 'While' | 'Do')
    | 'Call' postfix_expr
    | (assign_target '=')=> assign_target '=' expression
    | postfix_expr
    ;

elseif_part : 'ElseIf' expression 'Then' statement* ;

else_part : 'Else' statement* ;

step_part : 'Step' expression ;

case_part
    : 'Case' 'Else' statement*
    | 'Case' expression (',' expression)* statement*
    ;

assign_target : ID trailer* ;

trailer
    : '.' ID
    | '(' argument_list? ')'
    ;

argument_list : expression (',' expression)* ;

expression : comparison (('And' | 'Or' | 'AndAlso' | 'OrElse') comparison)* ;

comparison : concat (('=' | '<>' | '<' | '>' | '<=' | '>=') concat)* ;

concat : additive ('&' additive)* ;

additive : multiplicative (('+' | '-') multiplicative)* ;

multiplicative : unary (('*' | '/' | '\\' | 'Mod') unary)* ;

unary
    : ('-' | 'Not') unary
    | postfix_expr
    ;

postfix_expr : primary trailer* ;

primary
    : ID
    | INT_LIT
    | FLOAT_LIT
    | STRING_LIT
    | 'True' | 'False' | 'Nothing' | 'Me'
    | 'New' ID '(' argument_list? ')'
    | '(' expression ')'
    ;

ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT_LIT : [0-9]+ ;
FLOAT_LIT : [0-9]+ '.' [0-9]+ ;
STRING_LIT : '"' (~["])* '"' ;
WS : [ \t\r\n]+ -> skip ;
TICK_COMMENT : '\'' (~[\n])* -> skip ;
"""

SAMPLE = r"""
Module Main
    Public Shared Dim total As Integer = 0

    Public Function Accumulate(ByVal limit As Integer) As Integer
        Dim i As Integer = 0
        While i < limit
            total = total + i
            i = i + 1
        End While
        Return total
    End Function

    Sub Main()
        Call Accumulate(10)
        If total > 5 Then
            total = 0
        End If
    End Sub
End Module
"""

_NAMES = ["counter", "total", "index", "buffer", "limit", "value", "flag",
          "result", "acc", "item"]
_TYPES = ["Integer", "Long", "Double", "String", "Boolean"]
_MODS = ["Public", "Private", "Shared", "Friend"]


def _expr(rng: random.Random, depth: int = 0) -> str:
    if depth > 2 or rng.random() < 0.5:
        c = rng.random()
        if c < 0.5:
            return rng.choice(_NAMES)
        if c < 0.85:
            return str(rng.randint(0, 999))
        return '"%s"' % rng.choice(_NAMES)
    op = rng.choice(["+", "-", "*", "<", "=", "And", "&"])
    return "%s %s %s" % (_expr(rng, depth + 1), op, _expr(rng, depth + 1))


def _statement(rng: random.Random, depth: int = 0) -> str:
    indent = "        " + "    " * depth
    c = rng.random()
    if c < 0.35 or depth >= 2:
        return "%s%s = %s" % (indent, rng.choice(_NAMES), _expr(rng))
    if c < 0.45:
        return "%sDim %s%d As %s = %s" % (indent, rng.choice(_NAMES),
                                          rng.randint(0, 99),
                                          rng.choice(_TYPES), _expr(rng))
    if c < 0.6:
        return "%sIf %s Then\n%s\n%sEnd If" % (
            indent, _expr(rng), _statement(rng, depth + 1), indent)
    if c < 0.7:
        return "%sWhile %s\n%s\n%sEnd While" % (
            indent, _expr(rng), _statement(rng, depth + 1), indent)
    if c < 0.8:
        # Real VB style names the loop variable on Next; a bare `Next`
        # followed by an identifier statement is genuinely ambiguous
        # (the parser greedily binds the identifier to Next, as VB does).
        return "%sFor %s = 0 To %d\n%s\n%sNext index" % (
            indent, "index", rng.randint(2, 40),
            _statement(rng, depth + 1), indent)
    if c < 0.9:
        return "%sReturn %s" % (indent, _expr(rng))
    return "%sCall %s(%s)" % (indent, rng.choice(_NAMES), _expr(rng))


def generate_program(units: int, seed: int = 0) -> str:
    rng = random.Random(seed)
    modules = []
    left = units
    mi = 0
    while left > 0:
        n = min(left, rng.randint(3, 7))
        left -= n
        members = []
        for i in range(n):
            c = rng.random()
            mods = " ".join(rng.sample(_MODS, rng.randint(0, 2)))
            mods = mods + " " if mods else ""
            if c < 0.3:
                members.append("    %sDim %s%d As %s = %s" % (
                    mods, rng.choice(_NAMES), i, rng.choice(_TYPES), _expr(rng)))
            elif c < 0.65:
                body = "\n".join(_statement(rng) for _ in range(rng.randint(2, 6)))
                members.append(
                    "    %sFunction %s%d(ByVal a As Integer) As Integer\n%s\n"
                    "        Return a\n    End Function" % (
                        mods, rng.choice(_NAMES), i, body))
            else:
                body = "\n".join(_statement(rng) for _ in range(rng.randint(2, 6)))
                members.append("    %sSub %s%d(ByVal a As Integer)\n%s\n    End Sub"
                               % (mods, rng.choice(_NAMES), i, body))
        modules.append("Module M%d\n%s\nEnd Module" % (mi, "\n\n".join(members)))
        mi += 1
    return "\n\n".join(modules) + "\n"
