"""C#-style grammar — the C# analogue (manual synpreds, no PEG mode).

Like the paper's commercial C# grammar, this one relies on hand-placed
syntactic predicates where C# genuinely needs unbounded or structural
lookahead:

* cast-vs-parenthesized expression: ``(Foo)(x)`` vs ``(x)`` — classic
  ``((type) ')' unary)=>`` synpred;
* member dispatch across the shared ``attribute* modifier* type ID``
  prefix — mostly solvable with a cyclic DFA, with a synpred separating
  properties (``ID '{'``) from methods (``ID '('``) and fields;
* local-variable-declaration vs expression statements.
"""

from __future__ import annotations

import random

GRAMMAR = r"""
grammar CsLike;
options { memoize=true; }

compilation_unit : using_directive* namespace_member* ;

using_directive : 'using' qualified_name ';' ;

qualified_name : ID ('.' ID)* ;

namespace_member
    : 'namespace' qualified_name '{' namespace_member* '}'
    | class_decl
    ;

class_decl
    : cs_modifier* ('class' | 'struct' | 'interface') ID
      (':' type_list)? '{' class_member* '}'
    ;

cs_modifier
    : 'public' | 'private' | 'protected' | 'internal' | 'static'
    | 'sealed' | 'abstract' | 'virtual' | 'override' | 'readonly' | 'partial'
    ;

type_list : cs_type (',' cs_type)* ;

class_member
    : (cs_modifier* ('class' | 'struct' | 'interface'))=> class_decl
    | (cs_modifier* cs_type ID '{')=> property_decl
    | (cs_modifier* cs_type ID '(')=> method_decl
    | (cs_modifier* cs_type ID)=> field_decl
    | ctor_decl
    ;

property_decl
    : cs_modifier* cs_type ID '{' accessor+ '}'
    ;

accessor
    : 'get' (block | ';')
    | 'set' (block | ';')
    ;

method_decl
    : cs_modifier* cs_type ID '(' param_seq? ')' (block | ';')
    ;

field_decl : cs_modifier* cs_type declarator (',' declarator)* ';' ;

declarator : ID ('=' expression)? ;

ctor_decl : cs_modifier* ID '(' param_seq? ')' block ;

param_seq : param (',' param)* ;

param : ('ref' | 'out')? cs_type ID ;

cs_type
    : ('int' | 'long' | 'bool' | 'double' | 'string' | 'char' | 'object'
       | 'void' | 'var' | qualified_name type_args?) rank_spec*
    ;

type_args : '<' cs_type (',' cs_type)* '>' ;

rank_spec : '[' ','* ']' ;

block : '{' statement* '}' ;

statement
    : block
    | 'if' '(' expression ')' statement ('else' statement)?
    | 'while' '(' expression ')' statement
    | 'for' '(' for_initializer? ';' expression? ';' expression_list? ')'
      statement
    | 'foreach' '(' cs_type ID 'in' expression ')' statement
    | 'return' expression? ';'
    | 'throw' expression? ';'
    | 'break' ';'
    | 'continue' ';'
    | 'try' block catch_clause* ('finally' block)?
    | 'using' '(' local_decl ')' statement
    | (local_decl ';')=> local_decl ';'
    | expression ';'
    | ';'
    ;

catch_clause : 'catch' ('(' cs_type ID? ')')? block ;

for_initializer
    : (local_decl)=> local_decl
    | expression_list
    ;

expression_list : expression (',' expression)* ;

local_decl : cs_type declarator (',' declarator)* ;

expression : conditional (assign_op expression)? ;

assign_op : '=' | '+=' | '-=' | '*=' | '/=' | '??=' ;

conditional : null_coalesce ('?' expression ':' expression)? ;

null_coalesce : logical_or ('??' logical_or)* ;

logical_or : logical_and ('||' logical_and)* ;

logical_and : equality ('&&' equality)* ;

equality : relational (('==' | '!=') relational)* ;

relational : additive (('<' | '>' | '<=' | '>=' | 'is' | 'as') additive)* ;

additive : multiplicative (('+' | '-') multiplicative)* ;

multiplicative : unary (('*' | '/' | '%') unary)* ;

unary
    : ('(' cs_type ')' unary)=> '(' cs_type ')' unary
    | ('-' | '!' | '++' | '--') unary
    | postfix
    ;

postfix : primary suffix* ;

suffix
    : '.' ID ((type_args)=> type_args)? call_args?
    | '[' expression_list ']'
    | '++'
    | '--'
    ;

call_args : '(' argument_seq? ')' ;

argument_seq : argument (',' argument)* ;

argument : ('ref' | 'out')? expression ;

primary
    : '(' expression ')'
    | ID ((type_args)=> type_args)? call_args?
    | INT_LIT
    | FLOAT_LIT
    | CHAR_LIT
    | STRING_LIT
    | 'true' | 'false' | 'null' | 'this' | 'base'
    | 'new' cs_type (call_args | array_body)
    | 'typeof' '(' cs_type ')'
    ;

array_body : ('[' expression_list ']')? ('{' expression_list? '}')? ;

ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT_LIT : [0-9]+ [uUlL]? ;
FLOAT_LIT : [0-9]+ '.' [0-9]+ [fFmMdD]? ;
CHAR_LIT : '\'' ~['] '\'' ;
STRING_LIT : '"' (~["])* '"' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '/' '/' (~[\n])* -> skip ;
"""

SAMPLE = r"""
using System.Collections;

namespace Demo.App {
    public class Accumulator {
        private int total = 0;
        public int Limit { get; set; }

        public Accumulator(int limit) {
            Limit = limit;
        }

        public int Add(int value) {
            total += value;
            if (total > Limit) {
                total = (int)(total * 0.5);
            }
            return total;
        }
    }
}
"""

_NAMES = ["total", "index", "count", "buffer", "limit", "value", "result",
          "cache", "source", "target"]
_TYPES = ["int", "long", "double", "bool", "string", "List<int>", "object"]
_MODS = ["public", "private", "internal", "static"]


def _expr(rng: random.Random, depth: int = 0) -> str:
    if depth > 2 or rng.random() < 0.45:
        c = rng.random()
        if c < 0.45:
            return rng.choice(_NAMES)
        if c < 0.7:
            return str(rng.randint(0, 999))
        if c < 0.85:
            return "%s.%s(%s)" % (rng.choice(_NAMES), rng.choice(_NAMES),
                                  rng.choice(_NAMES))
        return "(int)(%s)" % rng.choice(_NAMES)
    op = rng.choice(["+", "-", "*", "<", "==", "&&", "??"])
    return "%s %s %s" % (_expr(rng, depth + 1), op, _expr(rng, depth + 1))


def _statement(rng: random.Random, depth: int = 0) -> str:
    indent = "            " + "    " * depth
    c = rng.random()
    if c < 0.3 or depth >= 2:
        return "%s%s = %s;" % (indent, rng.choice(_NAMES), _expr(rng))
    if c < 0.45:
        return "%sint %s%d = %s;" % (indent, rng.choice(_NAMES),
                                     rng.randint(0, 99), _expr(rng))
    if c < 0.6:
        return "%sif (%s) {\n%s\n%s}" % (indent, _expr(rng),
                                         _statement(rng, depth + 1), indent)
    if c < 0.72:
        return "%swhile (%s) {\n%s\n%s}" % (indent, _expr(rng),
                                            _statement(rng, depth + 1), indent)
    if c < 0.84:
        return "%sfor (int i = 0; i < %d; i += 1) {\n%s\n%s}" % (
            indent, rng.randint(2, 40), _statement(rng, depth + 1), indent)
    if c < 0.92:
        return "%sreturn %s;" % (indent, _expr(rng))
    return "%s%s.%s(%s);" % (indent, rng.choice(_NAMES), rng.choice(_NAMES),
                             _expr(rng))


def generate_program(units: int, seed: int = 0) -> str:
    rng = random.Random(seed)
    classes = []
    left = units
    ci = 0
    while left > 0:
        n = min(left, rng.randint(3, 7))
        left -= n
        members = []
        for i in range(n):
            c = rng.random()
            mods = rng.choice(_MODS)
            if c < 0.25:
                members.append("        %s %s %s%d = %s;" % (
                    mods, rng.choice(_TYPES), rng.choice(_NAMES), i, _expr(rng)))
            elif c < 0.4:
                members.append("        %s %s %s%d { get; set; }" % (
                    mods, rng.choice(_TYPES), rng.choice(_NAMES).title(), i))
            else:
                body = "\n".join(_statement(rng) for _ in range(rng.randint(2, 6)))
                members.append(
                    "        %s int %s%d(int a) {\n%s\n            return a;\n"
                    "        }" % (mods, rng.choice(_NAMES), i, body))
        classes.append("    public class K%d {\n%s\n    }"
                       % (ci, "\n\n".join(members)))
        ci += 1
    return ("using System;\n\nnamespace Bench.Gen {\n"
            + "\n\n".join(classes) + "\n}\n")
