"""TSQL-style grammar — the TSQL analogue.

The paper's TSQL grammar was the largest (8,241 lines, 1,120 decisions)
and also the most deterministic in practice (94% fixed, runtime avg
k = 1.08, max k = 20): SQL's keyword-led statements make prediction
cheap, with a few deeper decisions (CASE forms, JOIN variants,
function-call vs column reference).  This subset keeps those deeper
spots: ``CASE WHEN`` vs ``CASE expr WHEN`` (LL(2)), join chains,
``TOP`` clauses, subqueries, and a small T-SQL procedural layer
(DECLARE/SET/BEGIN..END/IF/WHILE) so statement dispatch has real width.
"""

from __future__ import annotations

import random

GRAMMAR = r"""
grammar SqlSub;
options { memoize=true; }

batch : sql_statement (';' sql_statement)* ';'? ;

sql_statement
    : (select_into)=> select_into
    | select_statement
    | insert_statement
    | update_statement
    | delete_statement
    | create_statement
    | alter_statement
    | declare_statement
    | set_statement
    | if_statement
    | while_statement
    | begin_block
    |
    ;

begin_block : 'BEGIN' sql_statement (';' sql_statement)* ';'? 'END' ;

if_statement : 'IF' search_condition sql_statement ('ELSE' sql_statement)? ;

while_statement : 'WHILE' search_condition sql_statement ;

declare_statement : 'DECLARE' LOCAL_ID 'AS'? data_type ('=' expression)? ;

set_statement : 'SET' LOCAL_ID '=' expression ;

create_statement
    : 'CREATE' 'TABLE' table_name '(' column_def (',' column_def)* ')'
    | 'CREATE' 'UNIQUE'? 'INDEX' ID 'ON' table_name '(' ID (',' ID)* ')'
    | 'CREATE' 'VIEW' ID 'AS' select_statement
    ;

// ALTER forms share a 3-token prefix; k=4 separates ADD from DROP.
alter_statement
    : 'ALTER' 'TABLE' ID 'ADD' column_def
    | 'ALTER' 'TABLE' ID 'DROP' 'COLUMN' ID
    ;

column_def : ID data_type column_option* ;

column_option
    : 'NOT' 'NULL'
    | 'NULL'
    | 'PRIMARY' 'KEY'
    | 'UNIQUE'
    | 'DEFAULT' expression
    ;

data_type : ID ('(' INT_LIT (',' INT_LIT)? ')')? ;

select_statement
    : 'SELECT' ('DISTINCT' | 'ALL')? top_clause? select_list
      from_clause? where_clause? group_clause? having_clause? order_clause?
    ;

select_into
    : 'SELECT' ('DISTINCT' | 'ALL')? top_clause? select_list
      'INTO' table_name from_clause? where_clause?
    ;

top_clause : 'TOP' INT_LIT ;

select_list : select_item (',' select_item)* ;

select_item
    : '*'
    | column_ref '.' '*'
    | expression ('AS'? ID)?
    ;

from_clause : 'FROM' table_source (',' table_source)* ;

table_source : table_primary join_part* ;

table_primary
    : table_name ('AS'? ID)?
    | '(' select_statement ')' 'AS'? ID
    ;

join_part
    : join_kind 'JOIN' table_primary 'ON' search_condition
    | 'CROSS' 'JOIN' table_primary
    ;

join_kind
    : 'INNER'?
    | 'LEFT' 'OUTER'?
    | 'RIGHT' 'OUTER'?
    | 'FULL' 'OUTER'?
    ;

table_name : ID ('.' ID)* ;

where_clause : 'WHERE' search_condition ;

group_clause : 'GROUP' 'BY' expression (',' expression)* ;

having_clause : 'HAVING' search_condition ;

order_clause : 'ORDER' 'BY' order_item (',' order_item)* ;

order_item : expression ('ASC' | 'DESC')? ;

insert_statement
    : 'INSERT' 'INTO'? table_name ('(' ID (',' ID)* ')')?
      ('VALUES' '(' expression (',' expression)* ')' | select_statement)
    ;

update_statement
    : 'UPDATE' table_name 'SET' assignment (',' assignment)* where_clause?
    ;

assignment : column_ref '=' expression ;

delete_statement : 'DELETE' 'FROM'? table_name where_clause? ;

search_condition : boolean_term ('OR' boolean_term)* ;

boolean_term : boolean_factor ('AND' boolean_factor)* ;

boolean_factor
    : 'NOT' boolean_factor
    | predicate
    ;

predicate
    : 'EXISTS' '(' select_statement ')'
    | expression predicate_tail?
    ;

predicate_tail
    : comparison_op expression
    | 'IS' 'NOT'? 'NULL'
    | 'NOT'? 'BETWEEN' expression 'AND' expression
    | 'NOT'? 'IN' '(' in_list ')'
    | 'NOT'? 'LIKE' expression
    ;

in_list
    : select_statement
    | expression (',' expression)*
    ;

comparison_op : '=' | '<>' | '!=' | '<' | '>' | '<=' | '>=' ;

expression : term (('+' | '-' | '||') term)* ;

term : factor (('*' | '/' | '%') factor)* ;

factor
    : '-' factor
    | primary_value
    ;

primary_value
    : case_expression
    | function_call
    | column_ref
    | LOCAL_ID
    | INT_LIT
    | FLOAT_LIT
    | STRING_LIT
    | 'NULL'
    | '(' paren_body ')'
    ;

paren_body
    : select_statement
    | expression
    ;

case_expression
    : 'CASE' 'WHEN' search_condition 'THEN' expression when_part*
      else_case? 'END'
    | 'CASE' expression 'WHEN' expression 'THEN' expression simple_when*
      else_case? 'END'
    ;

when_part : 'WHEN' search_condition 'THEN' expression ;

simple_when : 'WHEN' expression 'THEN' expression ;

else_case : 'ELSE' expression ;

function_call : ID '(' ('*' | 'DISTINCT'? expression (',' expression)*)? ')' ;

column_ref : ID ('.' ID)* ;

ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
LOCAL_ID : '@' [a-zA-Z_] [a-zA-Z0-9_]* ;
INT_LIT : [0-9]+ ;
FLOAT_LIT : [0-9]+ '.' [0-9]+ ;
STRING_LIT : '\'' (~['])* '\'' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '-' '-' (~[\n])* -> skip ;
"""

SAMPLE = r"""
DECLARE @limit AS INT = 10;
SELECT TOP 5 c.name, COUNT(o.id) AS orders
FROM customers c
LEFT OUTER JOIN orders o ON o.customer_id = c.id
WHERE c.active = 1 AND c.region IN ('NA', 'EU')
GROUP BY c.name
HAVING COUNT(o.id) > @limit
ORDER BY orders DESC;
UPDATE customers SET active = 0 WHERE last_seen < 20200101;
INSERT INTO audit (event, at) VALUES ('sweep', 20260705)
"""

_TABLES = ["customers", "orders", "items", "events", "users", "sessions",
           "products", "invoices"]
_COLUMNS = ["id", "name", "total", "status", "created_at", "region",
            "amount", "quantity", "price", "active"]
_FUNCS = ["COUNT", "SUM", "AVG", "MIN", "MAX"]


def _value(rng: random.Random) -> str:
    c = rng.random()
    if c < 0.4:
        return rng.choice(_COLUMNS)
    if c < 0.7:
        return str(rng.randint(0, 5000))
    if c < 0.85:
        return "'%s'" % rng.choice(_COLUMNS)
    return "%s(%s)" % (rng.choice(_FUNCS), rng.choice(_COLUMNS))


def _condition(rng: random.Random, depth: int = 0) -> str:
    if depth > 1 or rng.random() < 0.6:
        op = rng.choice(["=", "<>", "<", ">", "<=", ">="])
        return "%s %s %s" % (rng.choice(_COLUMNS), op, _value(rng))
    glue = rng.choice(["AND", "OR"])
    return "%s %s %s" % (_condition(rng, depth + 1), glue,
                         _condition(rng, depth + 1))


def _select(rng: random.Random, depth: int = 0) -> str:
    col_items = sorted(rng.sample(_COLUMNS, rng.randint(1, 4)))
    if rng.random() < 0.15:
        col_items.append("t0.*")
    cols = ", ".join(col_items)
    table = rng.choice(_TABLES)
    into = " INTO snapshot_%d" % rng.randint(0, 99) if rng.random() < 0.15 else ""
    parts = ["SELECT %s%s%s FROM %s t0" % (
        "TOP %d " % rng.randint(1, 100) if rng.random() < 0.3 else "",
        cols, into, table)]
    if rng.random() < 0.5:
        kind = rng.choice(["INNER", "LEFT OUTER", ""])
        parts.append("%s JOIN %s t1 ON t0.id = t1.%s"
                     % (kind, rng.choice(_TABLES), rng.choice(_COLUMNS)))
    if rng.random() < 0.7:
        parts.append("WHERE " + _condition(rng))
    if not into:  # SELECT ... INTO has no GROUP BY / ORDER BY tail
        if rng.random() < 0.3:
            parts.append("GROUP BY " + rng.choice(_COLUMNS))
        if rng.random() < 0.3:
            parts.append("ORDER BY %s %s" % (rng.choice(_COLUMNS),
                                             rng.choice(["ASC", "DESC"])))
    return "\n".join(parts)


def generate_program(units: int, seed: int = 0) -> str:
    """Generate a batch of ~``units`` SQL statements."""
    rng = random.Random(seed)
    stmts = []
    for i in range(units):
        c = rng.random()
        if c < 0.5:
            stmts.append(_select(rng))
        elif c < 0.65:
            table = rng.choice(_TABLES)
            sets = ", ".join("%s = %s" % (col, _value(rng))
                             for col in sorted(rng.sample(_COLUMNS, 2)))
            stmts.append("UPDATE %s SET %s WHERE %s"
                         % (table, sets, _condition(rng)))
        elif c < 0.78:
            cols = sorted(rng.sample(_COLUMNS, 3))
            stmts.append("INSERT INTO %s (%s) VALUES (%s)" % (
                rng.choice(_TABLES), ", ".join(cols),
                ", ".join(_value(rng) for _ in cols)))
        elif c < 0.88:
            stmts.append("DELETE FROM %s WHERE %s"
                         % (rng.choice(_TABLES), _condition(rng)))
        elif c < 0.92:
            stmts.append("DECLARE @v%d AS INT = %d" % (i, rng.randint(0, 99)))
        elif c < 0.95:
            kind = rng.random()
            if kind < 0.4:
                stmts.append("CREATE %sINDEX ix%d ON %s (%s)" % (
                    "UNIQUE " if rng.random() < 0.5 else "", i,
                    rng.choice(_TABLES), rng.choice(_COLUMNS)))
            else:
                stmts.append("CREATE VIEW v%d AS SELECT %s FROM %s t0" % (
                    i, rng.choice(_COLUMNS), rng.choice(_TABLES)))
        elif c < 0.975:
            if rng.random() < 0.5:
                stmts.append("ALTER TABLE t%d ADD %s INT NULL"
                             % (i, rng.choice(_COLUMNS)))
            else:
                stmts.append("ALTER TABLE t%d DROP COLUMN %s"
                             % (i, rng.choice(_COLUMNS)))
        else:
            cols = ",\n    ".join("%s INT NOT NULL" % c
                                  for c in sorted(rng.sample(_COLUMNS, 3)))
            stmts.append("CREATE TABLE t%d (\n    %s\n)" % (i, cols))
    return ";\n\n".join(stmts) + ";\n"
