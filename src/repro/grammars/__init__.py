"""Benchmark grammar suite.

Six grammars mirroring the paper's Table 1/Figure 12 suite in *kind*:

==============  =============================================================
``java``        Java subset in PEG mode (auto synpreds), like Java1.5
``rats_c``      C subset in PEG mode — declaration/definition ambiguity
                drives deep backtracking, like RatsC
``rats_java``   second, smaller Java-style grammar in PEG mode, like RatsJava
``vb``          VB.NET-style grammar with a few manual synpreds
``sql``         TSQL-style grammar (keyword-rich, mostly LL(1))
``csharp``      C#-style grammar with manual synpreds (cast vs parens)
==============  =============================================================

Each module exposes ``GRAMMAR`` (the grammar text), ``SAMPLE`` (a small
input), and ``generate_program(units, seed)`` (a deterministic workload
generator producing realistic source of roughly ``units`` top-level
declarations).  The registry below feeds the Table 1-4 benchmarks.
"""

from __future__ import annotations

import importlib
from typing import Dict, Optional

from repro.analysis.construction import AnalysisOptions

_MODULES = {
    "java": "repro.grammars.java_subset",
    "rats_c": "repro.grammars.rats_c",
    "rats_java": "repro.grammars.rats_java",
    "vb": "repro.grammars.vb_like",
    "sql": "repro.grammars.sql_subset",
    "csharp": "repro.grammars.csharp_like",
}

#: Paper-suite display names, in Table 1 row order.
PAPER_ORDER = ["java", "rats_c", "rats_java", "vb", "sql", "csharp"]
PAPER_NAMES = {
    "java": "Java1.5*", "rats_c": "RatsC*", "rats_java": "RatsJava*",
    "vb": "VB.NET*", "sql": "TSQL*", "csharp": "C#*",
}


class BenchmarkGrammar:
    """Lazy handle on one suite grammar: text, generator, compiled host."""

    def __init__(self, name: str, module_path: str):
        self.name = name
        self._module_path = module_path
        self._module = None
        self._host = None

    @property
    def module(self):
        if self._module is None:
            self._module = importlib.import_module(self._module_path)
        return self._module

    @property
    def grammar_text(self) -> str:
        return self.module.GRAMMAR

    @property
    def sample(self) -> str:
        return self.module.SAMPLE

    def generate_program(self, units: int, seed: int = 0) -> str:
        return self.module.generate_program(units, seed)

    def compile(self, options: Optional[AnalysisOptions] = None):
        """Compile (cached when using default options)."""
        from repro.api import compile_grammar

        if options is not None:
            return compile_grammar(self.grammar_text, options=options)
        if self._host is None:
            self._host = compile_grammar(self.grammar_text)
        return self._host

    def grammar_lines(self) -> int:
        return self.grammar_text.count("\n") + 1

    def __repr__(self):
        return "BenchmarkGrammar(%s)" % self.name


ALL: Dict[str, BenchmarkGrammar] = {
    name: BenchmarkGrammar(name, path) for name, path in _MODULES.items()
}


def load(name: str) -> BenchmarkGrammar:
    try:
        return ALL[name]
    except KeyError:
        raise KeyError("unknown benchmark grammar %r (have %s)"
                       % (name, sorted(ALL))) from None
