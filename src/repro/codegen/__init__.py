"""Python code generation: emit a standalone recursive-descent parser.

ANTLR's whole point is *generating* parsers: readable recursive-descent
code a programmer can single-step through (Section 1, debuggability).
:func:`generate_python` turns an analysed grammar into a Python module
with one method per rule, explicit if/elif chains per decision, and the
lookahead DFAs embedded as data tables interpreted by
:class:`repro.codegen.support.GeneratedParser`.
"""

from repro.codegen.python_target import generate_python
from repro.codegen.support import GeneratedParser

__all__ = ["generate_python", "GeneratedParser"]
