"""Runtime base class for generated parsers.

Generated modules contain plain recursive-descent methods; everything
decision-related (DFA walk per Figure 5, synpred speculation with
memoization, profiling) lives here so the generated code stays readable.

Lookahead machines are embedded as the same versioned flat-table dicts
the artifact cache stores (see :mod:`repro.tables`)::

    TABLES = {
      "version": 1,
      "pool": {"contexts": [...]},       # interned semantic contexts
      "decisions": [ {...DecisionTable dict...}, ... ],
    }

On first prediction the class reconstitutes live
:class:`~repro.tables.lookahead.DecisionTable` objects (once per
generated class, cached on it) and every ``_predict`` executes them
through the same derived execution index the interpreted parser uses —
one dict probe for fixed-k=1 decisions, per-state ``token -> target``
dicts for deeper lookahead.
Predicate ``code`` strings are evaluated against the calling rule
method's locals (passed in by generated code as ``frame``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import (
    FailedPredicateError,
    MismatchedTokenError,
    NoViableAltError,
    RecognitionError,
)
from repro.runtime.token import EOF
from repro.runtime.token_stream import ListTokenStream, TokenStream
from repro.runtime.trees import RuleNode, TreeBuilder

_MEMO_FAILED = -2


class GeneratedParser:
    """Base for generated parsers.  Subclasses define:

    * ``TABLES`` — the flat execution core (pool + one table per decision);
    * ``TOKEN_NAMES`` — type -> display name (errors);
    * ``TOKEN_TYPES`` — display name -> type (``self._tt``);
    * ``START_RULE`` — default entry rule name;
    * one ``rule_<name>`` method per parser rule and ``synpredN``
      methods for erased syntactic predicates.
    """

    TABLES: Dict[str, Any] = {"version": 1, "pool": {"contexts": []},
                              "decisions": []}
    TOKEN_NAMES: Dict[int, str] = {}
    TOKEN_TYPES: Dict[str, int] = {}
    START_RULE = ""

    @classmethod
    def _live_tables(cls):
        """Reconstitute (pool, [DecisionTable, ...]) from ``TABLES``,
        cached on the generated class itself (not this base)."""
        cached = cls.__dict__.get("_tables_cache")
        if cached is None:
            from repro.tables.lookahead import DecisionTable
            from repro.tables.pool import SemCtxPool
            from repro.tables.tableset import TABLE_FORMAT_VERSION

            data = cls.TABLES
            if data.get("version") != TABLE_FORMAT_VERSION:
                raise ValueError("generated table format %r != %d"
                                 % (data.get("version"), TABLE_FORMAT_VERSION))
            pool = SemCtxPool.from_dict(data["pool"])
            cached = (pool, [DecisionTable.from_dict(d, pool)
                             for d in data["decisions"]])
            cls._tables_cache = cached
        return cached

    def __init__(self, stream: TokenStream, state: Any = None,
                 build_tree: bool = True, memoize: bool = True, profiler=None):
        self.stream = stream
        self.state = state
        self.build_tree = build_tree
        self.memoize = memoize
        self.profiler = profiler
        self.errors: List[RecognitionError] = []
        self._speculating = 0
        self._memo: Dict[Tuple[str, int], int] = {}
        # Trees are built through the shared TreeBuilder (same span and
        # attach-on-close contract as the interpreted parser).  One
        # (rule_name, opened) frame per active rule method; ``opened``
        # records whether that frame opened a tree node, so _exit knows
        # whether to close/abandon and token matches know whether to
        # attach leaves.
        self._builder = TreeBuilder(source=stream.source)
        self._frames: List[Tuple[str, bool]] = []

    # -- entry ----------------------------------------------------------------------

    @classmethod
    def from_tokens(cls, tokens, **kwargs) -> "GeneratedParser":
        return cls(ListTokenStream(tokens), **kwargs)

    def parse(self, rule_name: Optional[str] = None, require_eof: bool = True):
        rule_name = rule_name or self.START_RULE
        method = getattr(self, "rule_" + rule_name, None)
        if method is None:
            raise AttributeError("no generated rule method for %r" % rule_name)
        tree = method()
        if require_eof and self.stream.la(1) != EOF:
            raise MismatchedTokenError("EOF", self.stream.lt(1), self.stream.index,
                                       rule_name=rule_name)
        return tree

    # -- rule scaffolding (called by generated code) --------------------------------------

    @property
    def speculating(self) -> bool:
        return self._speculating > 0

    def _enter(self, rule_name: str) -> Optional[RuleNode]:
        if self.build_tree and not self.speculating:
            node = self._builder.open_rule(rule_name, self.stream.index)
            self._frames.append((rule_name, True))
            return node
        self._frames.append((rule_name, False))
        return None

    def _exit(self, ok: bool = True) -> None:
        """Leave the current rule method.  ``ok`` False (the rule raised)
        abandons the node instead of closing it, so failed rules leave
        nothing behind in the tree (attach happens at close)."""
        _rule_name, opened = self._frames.pop()
        if opened:
            if ok:
                self._builder.close_rule(self.stream.index)
            else:
                self._builder.abandon_rule()

    def _match(self, token_type: int):
        token = self.stream.lt(1)
        if token.type != token_type:
            raise MismatchedTokenError(
                self.TOKEN_NAMES.get(token_type, str(token_type)), token,
                self.stream.index, rule_name=self._current_rule())
        self.stream.consume()
        if self._frames and self._frames[-1][1]:
            self._builder.add_token(token)
        return token

    def _match_any(self, allowed) -> object:
        token = self.stream.lt(1)
        if token.type not in allowed or token.type == EOF:
            raise MismatchedTokenError(
                "one of %s" % sorted(allowed), token, self.stream.index,
                rule_name=self._current_rule())
        self.stream.consume()
        if self._frames and self._frames[-1][1]:
            self._builder.add_token(token)
        return token

    def _current_rule(self) -> Optional[str]:
        for name, opened in reversed(self._frames):
            if opened:
                return name
        return None

    def _fail_predicate(self, code: str) -> None:
        raise FailedPredicateError(code, token=self.stream.lt(1),
                                   index=self.stream.index,
                                   rule_name=self._current_rule())

    def _tt(self, name: str) -> int:
        return self.TOKEN_TYPES[name]

    def _memo_enter(self, rule_name: str) -> Optional[bool]:
        """Check the speculation memo; True = cached success (stream
        repositioned), raises on cached failure, None = no entry."""
        if not (self.speculating and self.memoize):
            return None
        cached = self._memo.get((rule_name, self.stream.index))
        if cached is None:
            return None
        if cached == _MEMO_FAILED:
            raise RecognitionError("memoized failure of %s" % rule_name,
                                   token=self.stream.lt(1), index=self.stream.index)
        self.stream.seek(cached)
        return True

    def _memo_exit(self, rule_name: str, start_index: int, failed: bool) -> None:
        if self.speculating and self.memoize:
            self._memo[(rule_name, start_index)] = (
                _MEMO_FAILED if failed else self.stream.index)

    # -- prediction -------------------------------------------------------------------------

    def _predict(self, decision: int, frame: Dict[str, Any]) -> int:
        """Execute the decision's flat table; return the predicted
        alternative.

        Same inner loop as the interpreted parser: the table's derived
        execution index resolves a fixed-k=1 prediction with one dict
        probe and walks deeper lookahead through per-state
        ``token -> target`` dicts.
        """
        _pool, tables = self._live_tables()
        table = tables[decision]
        la = self.stream.la
        fast, rows = table.execution_index()
        accept_alt = table.accept_alt
        pred_index = table.pred_index
        offset = 0
        backtracked = [False]
        backtrack_depth = [0]
        try:
            alt = fast.get(la(1))
            if alt is not None:
                offset = 1
                return alt
            state = table.start
            while True:
                alt = accept_alt[state]
                if alt > 0:
                    return alt
                token_type = la(offset + 1)
                nxt = rows[state].get(token_type)
                if nxt is not None:
                    state = nxt
                    offset += 1
                    continue
                if pred_index[state] != pred_index[state + 1]:
                    alt = self._evaluate_gates(table, state, frame,
                                               backtracked, backtrack_depth)
                    if alt is not None:
                        return alt
                raise NoViableAltError(decision, self.stream.lt(offset + 1),
                                       self.stream.index + offset,
                                       rule_name=self._current_rule())
        finally:
            if self.profiler is not None and not self.speculating:
                self.profiler.record(decision, max(offset, 1), backtracked[0],
                                     backtrack_depth[0])

    def _evaluate_gates(self, table, state, frame, backtracked,
                        backtrack_depth) -> Optional[int]:
        """Predicate edges in stored (evaluation) order; first pass wins."""

        def eval_leaf(predicate) -> bool:
            if predicate.is_synpred:
                backtracked[0] = True
                ok, depth = self._eval_synpred(predicate.synpred)
                backtrack_depth[0] = max(backtrack_depth[0], depth)
                return ok
            env = {"state": self.state, "parser": self, "stream": self.stream,
                   "LA": self.stream.la, "LT": self.stream.lt, "TT": self._tt}
            return bool(eval(predicate.code, env, dict(frame)))

        contexts = table.pool.contexts
        pred_ctx = table.pred_ctx
        pred_alt = table.pred_alt
        for i in range(table.pred_index[state], table.pred_index[state + 1]):
            c = pred_ctx[i]
            if c < 0 or contexts[c].evaluate(eval_leaf):
                return pred_alt[i]
        return None

    def _eval_synpred(self, name: str) -> Tuple[bool, int]:
        mark = self.stream.mark()
        self._speculating += 1
        try:
            getattr(self, "rule_" + name)()
            matched = True
        except RecognitionError:
            matched = False
        finally:
            depth = self.stream.index - mark
            self._speculating -= 1
            self.stream.seek(mark)
            release = getattr(self.stream, "release", None)
            if release is not None:
                release(mark)  # lets streaming streams shrink their window
        return matched, depth
