"""repro — a reproduction of "LL(*): The Foundation of the ANTLR Parser
Generator" (Parr & Fisher, PLDI 2011).

Public API tour
---------------

Front end (:mod:`repro.grammar`):
    ``parse_grammar(text)`` reads an ANTLR-style grammar;
    ``GrammarBuilder`` constructs grammars programmatically;
    ``validate_grammar`` reports left recursion and PEG hazards;
    ``eliminate_left_recursion`` applies the predicated
    precedence-climbing rewrite from Section 1.1.

Static analysis (:mod:`repro.analysis`):
    ``analyze(grammar)`` builds an ATN, runs the modified subset
    construction (Algorithms 8-11) per decision, and returns an
    :class:`~repro.analysis.decisions.AnalysisResult` with one lookahead
    DFA per decision plus its classification (fixed LL(k) / cyclic /
    backtracking).

Runtime (:mod:`repro.runtime`):
    ``LLStarParser`` interprets the analysed grammar over a token
    stream, predicting with the lookahead DFA and failing over to
    memoized speculation on synpred edges.  ``DecisionProfiler``
    collects the per-decision-event statistics behind the paper's
    Tables 2-4.  With ``ParserOptions(recover=True)`` the parser
    repairs errors ANTLR-style (single-token insertion/deletion,
    FOLLOW-set resync) and marks every repair with an ``ErrorNode``;
    ``ParserBudget`` bounds time and speculation with typed
    :class:`BudgetExceededError`; :mod:`repro.runtime.chaos` provides
    seeded fault injection for robustness testing.

Convenience:
    :func:`compile_grammar` wires the whole pipeline together and
    returns a ready-to-use :class:`ParserHost`.

Artifact cache (:mod:`repro.cache`):
    ``compile_grammar(text, cache_dir=...)`` persists the analysis
    output (lookahead DFAs, classifications, diagnostics, lexer tables)
    to a versioned on-disk store; later compiles of the same grammar
    warm-start from disk and skip static analysis entirely.

Batch parsing (:mod:`repro.batch`):
    :class:`BatchEngine` parses a corpus across a process pool whose
    workers warm-start once from the cache or a shipped table payload;
    each input is budget-isolated, and per-worker metrics/profiles fold
    into one :class:`BatchReport`.  :func:`parse_corpus` is the
    one-call form.

>>> import repro
>>> host = repro.compile_grammar(r'''
...     grammar Demo;
...     s : ID | ID '=' INT ;
...     ID : [a-z]+ ;
...     INT : [0-9]+ ;
...     WS : [ \t\r\n]+ -> skip ;
... ''')
>>> tree = host.parse("x = 42")
>>> tree.to_sexpr()
"(s x '=' 42)"
"""

from repro.exceptions import (
    LLStarError,
    GrammarError,
    GrammarSyntaxError,
    LeftRecursionError,
    AnalysisError,
    LikelyNonLLRegularError,
    RecognitionError,
    NoViableAltError,
    MismatchedTokenError,
    FailedPredicateError,
    LexerError,
    BudgetExceededError,
    TokenStreamError,
)
from repro.runtime.budget import ParserBudget
from repro.runtime.telemetry import MetricsRegistry, ParseTelemetry
from repro.grammar import (
    Grammar,
    GrammarBuilder,
    parse_grammar,
    validate_grammar,
    apply_peg_mode,
    erase_syntactic_predicates,
    eliminate_left_recursion,
)
from repro.api import compile_grammar, host_from_artifact, ParserHost
from repro.analysis import analyze, AnalysisOptions, AnalysisResult
from repro.batch import BatchEngine, BatchReport, BatchResult, parse_corpus
from repro import cache

__version__ = "1.0.0"

__all__ = [
    "LLStarError",
    "GrammarError",
    "GrammarSyntaxError",
    "LeftRecursionError",
    "AnalysisError",
    "LikelyNonLLRegularError",
    "RecognitionError",
    "NoViableAltError",
    "MismatchedTokenError",
    "FailedPredicateError",
    "LexerError",
    "BudgetExceededError",
    "ParserBudget",
    "Grammar",
    "GrammarBuilder",
    "parse_grammar",
    "validate_grammar",
    "apply_peg_mode",
    "erase_syntactic_predicates",
    "eliminate_left_recursion",
    "BatchEngine",
    "BatchReport",
    "BatchResult",
    "cache",
    "compile_grammar",
    "host_from_artifact",
    "parse_corpus",
    "ParserHost",
    "analyze",
    "AnalysisOptions",
    "AnalysisResult",
    "__version__",
]
