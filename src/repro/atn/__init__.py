"""Augmented Transition Networks (Section 5.1 of the paper).

An ATN is the graph form of the grammar that static analysis traces: one
submachine per rule, nonterminal edges acting as function calls (push the
return state, jump to the callee's start state).  The construction rules
follow Figure 7, with cycles added for EBNF operators as noted in
Section 5.5.
"""

from repro.atn.states import (
    ATN,
    ATNState,
    BasicState,
    RuleStartState,
    RuleStopState,
    DecisionState,
    DecisionKind,
)
from repro.atn.transitions import (
    Transition,
    EpsilonTransition,
    AtomTransition,
    SetTransition,
    RuleTransition,
    PredicateTransition,
    ActionTransition,
    Predicate,
    SemanticAction,
)
from repro.atn.builder import build_atn
from repro.atn.dot import atn_to_dot, dfa_to_dot

__all__ = [
    "ATN",
    "ATNState",
    "BasicState",
    "RuleStartState",
    "RuleStopState",
    "DecisionState",
    "DecisionKind",
    "Transition",
    "EpsilonTransition",
    "AtomTransition",
    "SetTransition",
    "RuleTransition",
    "PredicateTransition",
    "ActionTransition",
    "Predicate",
    "SemanticAction",
    "build_atn",
    "atn_to_dot",
    "dfa_to_dot",
]
