"""Grammar -> ATN construction (Figure 7, plus EBNF cycles).

One submachine per parser rule: ``p_A --ε--> p_{A,i} --...--> p'_A`` for
each alternative i.  EBNF operators add cycles (Section 5.5):

* ``(a|b)`` — a block decision state fanning out to each alternative,
  all rejoining at a block-end state;
* ``x?`` — a decision with an enter-branch and a bypass-branch;
* ``x*`` — a loop-entry decision (iterate / exit) with the body cycling
  back to the decision;
* ``x+`` — body first, then a loop-back decision (iterate / exit).

Greedy semantics put the iterate/enter branch first so static ambiguity
resolution (lowest alternative wins) prefers consuming more input,
matching ANTLR's EBNF behaviour.

Syntactic predicates must be erased (named) before ATN construction; the
builder refuses anonymous ones so the pipeline order is enforced.
"""

from __future__ import annotations

from repro.exceptions import GrammarError
from repro.grammar import ast
from repro.grammar.model import Grammar, Rule
from repro.atn.states import (
    ATN,
    ATNState,
    BasicState,
    DecisionKind,
    DecisionState,
    RuleStartState,
    RuleStopState,
)
from repro.atn.transitions import (
    ActionTransition,
    AtomTransition,
    EpsilonTransition,
    Predicate,
    PredicateTransition,
    RuleTransition,
    SemanticAction,
    SetTransition,
)
from repro.runtime.token import EOF
from repro.util.intervals import IntervalSet


def build_atn(grammar: Grammar) -> ATN:
    """Build the ATN for all parser rules of ``grammar``."""
    return _ATNBuilder(grammar).build()


class _ATNBuilder:
    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.atn = ATN(grammar.name)

    def build(self) -> ATN:
        rules = self.grammar.parser_rules
        if not rules:
            raise GrammarError("grammar %s has no parser rules" % self.grammar.name)
        # Create all start/stop pairs first so rule refs can link forward.
        for rule in rules:
            start = self.atn.new_state(RuleStartState, rule.name)
            stop = self.atn.new_state(RuleStopState, rule.name)
            start.stop_state = stop
            self.atn.rule_start[rule.name] = start
            self.atn.rule_stop[rule.name] = stop
        for rule in rules:
            self._build_rule(rule)
        eof = self.atn.new_state(BasicState, "<eof>")
        eof.add_transition(AtomTransition(eof, EOF))
        self.atn.eof_state = eof
        return self.atn

    # -- rule & alternatives ----------------------------------------------------

    def _build_rule(self, rule: Rule) -> None:
        start = self.atn.rule_start[rule.name]
        stop = self.atn.rule_stop[rule.name]
        if rule.num_alternatives > 1:
            d = self.atn.register_decision(start, rule.name, DecisionKind.RULE)
            self.atn.decision_for_rule[rule.name] = d
        for alt in rule.alternatives:
            left = self.atn.new_state(BasicState, rule.name)
            start.add_transition(EpsilonTransition(left))
            end = self._build_sequence(alt.elements, left, rule.name)
            end.add_transition(EpsilonTransition(stop))

    def _build_sequence(self, elements, current: ATNState, rule_name: str) -> ATNState:
        for el in elements:
            current = self._build_element(el, current, rule_name)
        return current

    # -- elements ------------------------------------------------------------------

    def _build_element(self, el: ast.Element, current: ATNState, rule_name: str) -> ATNState:
        if isinstance(el, ast.Epsilon):
            return current
        if isinstance(el, (ast.TokenRef, ast.Literal)):
            return self._atom(current, rule_name, self.grammar.token_type(el))
        if isinstance(el, ast.RuleRef):
            return self._rule_ref(el, current, rule_name)
        if isinstance(el, ast.NotToken):
            return self._not_token(el, current, rule_name)
        if isinstance(el, ast.Wildcard):
            universe = IntervalSet([(1, max(1, self.grammar.vocabulary.max_type))])
            nxt = self.atn.new_state(BasicState, rule_name)
            current.add_transition(SetTransition(nxt, universe))
            return nxt
        if isinstance(el, ast.Sequence):
            return self._build_sequence(el.elements, current, rule_name)
        if isinstance(el, ast.Block):
            return self._block(el, current, rule_name)
        if isinstance(el, ast.Optional_):
            return self._optional(el, current, rule_name)
        if isinstance(el, ast.Star):
            return self._star(el, current, rule_name)
        if isinstance(el, ast.Plus):
            return self._plus(el, current, rule_name)
        if isinstance(el, ast.SemanticPredicate):
            nxt = self.atn.new_state(BasicState, rule_name)
            current.add_transition(PredicateTransition(nxt, Predicate(code=el.code)))
            return nxt
        if isinstance(el, ast.SyntacticPredicate):
            if el.name is None:
                raise GrammarError(
                    "syntactic predicate not erased before ATN construction; "
                    "run erase_syntactic_predicates() first")
            nxt = self.atn.new_state(BasicState, rule_name)
            current.add_transition(PredicateTransition(nxt, Predicate(synpred=el.name)))
            return nxt
        if isinstance(el, ast.Action):
            nxt = self.atn.new_state(BasicState, rule_name)
            current.add_transition(
                ActionTransition(nxt, SemanticAction(el.code, el.always_exec)))
            return nxt
        if isinstance(el, (ast.CharSet, ast.CharRange)):
            raise GrammarError(
                "character element %r in parser rule %s (lexer-only construct)"
                % (el, rule_name))
        raise GrammarError("cannot build ATN for element %r" % el)

    def _atom(self, current: ATNState, rule_name: str, token_type: int) -> ATNState:
        nxt = self.atn.new_state(BasicState, rule_name)
        current.add_transition(AtomTransition(nxt, token_type))
        return nxt

    def _rule_ref(self, el: ast.RuleRef, current: ATNState, rule_name: str) -> ATNState:
        target_rule = self.grammar.rule(el.name)
        if target_rule.is_lexer_rule:
            raise GrammarError("parser rule %s references lexer rule %s as a rule"
                               % (rule_name, el.name))
        follow = self.atn.new_state(BasicState, rule_name)
        t = RuleTransition(self.atn.rule_start[el.name], el.name, follow, el.args)
        current.add_transition(t)
        self.atn.note_call_site(t)
        return follow

    def _not_token(self, el: ast.NotToken, current: ATNState, rule_name: str) -> ATNState:
        excluded = IntervalSet()
        for name in el.token_names:
            if name.startswith("'"):
                t = self.grammar.vocabulary.type_of_literal(name[1:-1])
            else:
                t = self.grammar.vocabulary.type_of(name)
            if t is None:
                raise GrammarError("unknown token %s in ~ set" % name)
            excluded.add(t)
        universe_hi = max(1, self.grammar.vocabulary.max_type)
        allowed = excluded.complement(1, universe_hi)
        nxt = self.atn.new_state(BasicState, rule_name)
        current.add_transition(SetTransition(nxt, allowed))
        return nxt

    # -- EBNF ---------------------------------------------------------------------

    def _block(self, el: ast.Block, current: ATNState, rule_name: str) -> ATNState:
        if len(el.alternatives) == 1:
            return self._build_element(el.alternatives[0], current, rule_name)
        decision = self.atn.new_state(DecisionState, rule_name, DecisionKind.BLOCK)
        self.atn.decision_for_element[id(el)] = self.atn.register_decision(
            decision, rule_name, DecisionKind.BLOCK)
        current.add_transition(EpsilonTransition(decision))
        end = self.atn.new_state(BasicState, rule_name)
        for alt in el.alternatives:
            left = self.atn.new_state(BasicState, rule_name)
            decision.add_transition(EpsilonTransition(left))
            alt_end = self._build_element(alt, left, rule_name)
            alt_end.add_transition(EpsilonTransition(end))
        return end

    def _optional(self, el: ast.Optional_, current: ATNState, rule_name: str) -> ATNState:
        decision = self.atn.new_state(DecisionState, rule_name, DecisionKind.OPTIONAL)
        self.atn.decision_for_element[id(el)] = self.atn.register_decision(
            decision, rule_name, DecisionKind.OPTIONAL)
        current.add_transition(EpsilonTransition(decision))
        end = self.atn.new_state(BasicState, rule_name)
        body_left = self.atn.new_state(BasicState, rule_name)
        decision.add_transition(EpsilonTransition(body_left))  # alt 1: enter
        body_end = self._build_element(el.element, body_left, rule_name)
        body_end.add_transition(EpsilonTransition(end))
        decision.add_transition(EpsilonTransition(end))  # alt 2: bypass
        return end

    def _star(self, el: ast.Star, current: ATNState, rule_name: str) -> ATNState:
        decision = self.atn.new_state(DecisionState, rule_name, DecisionKind.STAR)
        self.atn.decision_for_element[id(el)] = self.atn.register_decision(
            decision, rule_name, DecisionKind.STAR)
        current.add_transition(EpsilonTransition(decision))
        end = self.atn.new_state(BasicState, rule_name)
        body_left = self.atn.new_state(BasicState, rule_name)
        decision.add_transition(EpsilonTransition(body_left))  # alt 1: iterate
        body_end = self._build_element(el.element, body_left, rule_name)
        body_end.add_transition(EpsilonTransition(decision))  # cycle back
        decision.add_transition(EpsilonTransition(end))  # alt 2: exit
        decision.loopback_target = body_left
        return end

    def _plus(self, el: ast.Plus, current: ATNState, rule_name: str) -> ATNState:
        body_left = self.atn.new_state(BasicState, rule_name)
        current.add_transition(EpsilonTransition(body_left))
        body_end = self._build_element(el.element, body_left, rule_name)
        decision = self.atn.new_state(DecisionState, rule_name, DecisionKind.PLUS)
        self.atn.decision_for_element[id(el)] = self.atn.register_decision(
            decision, rule_name, DecisionKind.PLUS)
        body_end.add_transition(EpsilonTransition(decision))
        end = self.atn.new_state(BasicState, rule_name)
        decision.add_transition(EpsilonTransition(body_left))  # alt 1: iterate
        decision.add_transition(EpsilonTransition(end))  # alt 2: exit
        decision.loopback_target = body_left
        return end
