"""Graphviz DOT export for ATNs and lookahead DFAs.

Used by the CLI (``llstar analyze --dot``) and by the paper-figure
examples to render diagrams comparable to Figures 1, 2, and 6.
"""

from __future__ import annotations

from typing import Optional


def _esc(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace('"', '\\"')


def atn_to_dot(atn, rule_name: Optional[str] = None, vocabulary=None) -> str:
    """Render the ATN (or one rule's submachine) as DOT text."""
    from repro.atn.states import RuleStartState, RuleStopState
    from repro.atn.transitions import (
        ActionTransition, AtomTransition, EpsilonTransition,
        PredicateTransition, RuleTransition, SetTransition)

    lines = ["digraph ATN {", "  rankdir=LR;", '  node [shape=circle, fontsize=10];']
    states = atn.states
    if rule_name is not None:
        reach = set()
        work = [atn.rule_start[rule_name]]
        while work:
            s = work.pop()
            if s.id in reach:
                continue
            reach.add(s.id)
            for t in s.transitions:
                if isinstance(t, RuleTransition):
                    work.append(t.follow_state)
                else:
                    work.append(t.target)
        states = [s for s in states if s.id in reach]

    for s in states:
        shape = "circle"
        label = "s%d" % s.id
        if isinstance(s, RuleStartState):
            label = "p_%s" % s.rule_name
            shape = "box"
        elif isinstance(s, RuleStopState):
            label = "p'_%s" % s.rule_name
            shape = "doublecircle"
        elif s.is_decision:
            label = "d%d" % s.decision
            shape = "diamond"
        lines.append('  s%d [label="%s", shape=%s];' % (s.id, _esc(label), shape))

    for s in states:
        for t in s.transitions:
            if isinstance(t, AtomTransition):
                name = vocabulary.name_of(t.token_type) if vocabulary else str(t.token_type)
                lines.append('  s%d -> s%d [label="%s"];' % (s.id, t.target.id, _esc(name)))
            elif isinstance(t, SetTransition):
                lines.append('  s%d -> s%d [label="%s"];' % (s.id, t.target.id, _esc(repr(t.token_set))))
            elif isinstance(t, RuleTransition):
                lines.append('  s%d -> s%d [label="%s", style=dashed];'
                             % (s.id, t.follow_state.id, _esc(t.rule_name)))
            elif isinstance(t, PredicateTransition):
                lines.append('  s%d -> s%d [label="%s", color=blue];'
                             % (s.id, t.target.id, _esc(repr(t.predicate))))
            elif isinstance(t, ActionTransition):
                lines.append('  s%d -> s%d [label="%s", color=gray];'
                             % (s.id, t.target.id, _esc(repr(t.action))))
            elif isinstance(t, EpsilonTransition):
                lines.append('  s%d -> s%d [label="ε"];' % (s.id, t.target.id))
    lines.append("}")
    return "\n".join(lines)


def dfa_to_dot(dfa, vocabulary=None) -> str:
    """Render a lookahead DFA in the style of the paper's Figure 1."""
    lines = ["digraph DFA {", "  rankdir=LR;", '  node [shape=circle, fontsize=10];']
    for state in dfa.states:
        if state.is_accept:
            lines.append('  D%d [label="%s=>%d", shape=doublecircle];'
                         % (state.id, "D%d" % state.id, state.predicted_alt))
        else:
            lines.append('  D%d [label="D%d"];' % (state.id, state.id))
    for state in dfa.states:
        for token_type, target in sorted(state.edges.items()):
            name = vocabulary.name_of(token_type) if vocabulary else str(token_type)
            lines.append('  D%d -> D%d [label="%s"];' % (state.id, target.id, _esc(name)))
        for pred, alt, target in state.predicate_edges:
            label = repr(pred) if pred is not None else "default=>%d" % alt
            lines.append('  D%d -> D%d [label="%s", color=blue];'
                         % (state.id, target.id, _esc(label)))
    lines.append("}")
    return "\n".join(lines)
