"""ATN states and the ATN container.

State taxonomy:

* :class:`RuleStartState` / :class:`RuleStopState` — submachine entry
  ``p_A`` and exit ``p'_A`` per Figure 6/7.
* :class:`DecisionState` — any state where the parser must choose among
  epsilon alternatives: multi-alternative rule starts, subrule blocks,
  optional blocks, star-loop entries, plus-loop-backs.  Each gets a
  decision number and, after analysis, a lookahead DFA.
* :class:`BasicState` — everything else.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.atn.transitions import RuleTransition, Transition


class DecisionKind:
    """Where a decision comes from; affects bookkeeping, not semantics."""

    RULE = "rule"          # A : a1 | a2 | ... an ;
    BLOCK = "block"        # ( a1 | a2 )
    OPTIONAL = "optional"  # x?  (alt 1 = enter, alt 2 = skip)
    STAR = "star"          # x*  (alt 1 = iterate, alt 2 = exit)
    PLUS = "plus"          # x+ loopback (alt 1 = iterate, alt 2 = exit)

    ALL = (RULE, BLOCK, OPTIONAL, STAR, PLUS)


class ATNState:
    """Graph node: numbered, owned by one rule, with ordered out-edges."""

    __slots__ = ("id", "rule_name", "transitions")

    def __init__(self, state_id: int, rule_name: str):
        self.id = state_id
        self.rule_name = rule_name
        self.transitions: List[Transition] = []

    def add_transition(self, t: Transition) -> None:
        self.transitions.append(t)

    @property
    def is_decision(self) -> bool:
        return False

    def __repr__(self):
        return "s%d(%s)" % (self.id, self.rule_name)

    # States are identity-hashed: two distinct nodes are never "equal".
    __hash__ = object.__hash__
    __eq__ = object.__eq__


class BasicState(ATNState):
    __slots__ = ()


class RuleStartState(ATNState):
    __slots__ = ("stop_state", "decision")

    def __init__(self, state_id: int, rule_name: str):
        super().__init__(state_id, rule_name)
        self.stop_state: Optional[RuleStopState] = None
        self.decision: Optional[int] = None  # set when rule has >1 alternative

    @property
    def is_decision(self) -> bool:
        return self.decision is not None

    def __repr__(self):
        return "p_%s(s%d)" % (self.rule_name, self.id)


class RuleStopState(ATNState):
    __slots__ = ()

    def __repr__(self):
        return "p'_%s(s%d)" % (self.rule_name, self.id)


class DecisionState(ATNState):
    """A choice point; out-transitions (all epsilon) are the alternatives,
    in grammar order."""

    __slots__ = ("decision", "kind", "loopback_target")

    def __init__(self, state_id: int, rule_name: str, kind: str):
        super().__init__(state_id, rule_name)
        self.decision: Optional[int] = None
        self.kind = kind
        # For loops: state the parser jumps to when iterating (body entry).
        self.loopback_target: Optional[ATNState] = None

    @property
    def is_decision(self) -> bool:
        return True

    @property
    def num_alternatives(self) -> int:
        return len(self.transitions)

    def __repr__(self):
        return "d%s:%s(s%d)" % (self.decision, self.kind, self.id)


class DecisionInfo:
    """Static metadata about one decision point."""

    __slots__ = ("decision", "state", "rule_name", "kind")

    def __init__(self, decision: int, state: ATNState, rule_name: str, kind: str):
        self.decision = decision
        self.state = state
        self.rule_name = rule_name
        self.kind = kind

    @property
    def num_alternatives(self) -> int:
        return len(self.state.transitions)

    def __repr__(self):
        return "decision %d (%s in rule %s, %d alts)" % (
            self.decision, self.kind, self.rule_name, self.num_alternatives)


class ATN:
    """The whole network: states, rule entry/exit maps, decision table."""

    def __init__(self, grammar_name: str):
        self.grammar_name = grammar_name
        self.states: List[ATNState] = []
        self.rule_start: Dict[str, RuleStartState] = {}
        self.rule_stop: Dict[str, RuleStopState] = {}
        self.decisions: List[DecisionInfo] = []
        #: rule name -> rule transitions that call it (for empty-stack closure)
        self.call_sites: Dict[str, List[RuleTransition]] = {}
        #: synthetic state whose only edge matches EOF (self-loop); used
        #: when lookahead runs off the end of the start rule.
        self.eof_state: Optional[ATNState] = None
        #: id(ast element) -> decision number, for subrule decisions
        #: (Block/Optional_/Star/Plus); lets the code generator emit the
        #: same decision numbering the builder assigned.
        self.decision_for_element: Dict[int, int] = {}
        #: rule name -> decision number for multi-alternative rules.
        self.decision_for_rule: Dict[str, int] = {}

    # -- construction helpers (used by the builder) ---------------------------

    def new_state(self, cls, rule_name: str, *args) -> ATNState:
        s = cls(len(self.states), rule_name, *args)
        self.states.append(s)
        return s

    def register_decision(self, state, rule_name: str, kind: str) -> int:
        decision = len(self.decisions)
        state.decision = decision
        self.decisions.append(DecisionInfo(decision, state, rule_name, kind))
        return decision

    def note_call_site(self, t: RuleTransition) -> None:
        self.call_sites.setdefault(t.rule_name, []).append(t)

    # -- queries ------------------------------------------------------------------

    def decision_state(self, decision: int) -> ATNState:
        return self.decisions[decision].state

    @property
    def num_decisions(self) -> int:
        return len(self.decisions)

    def __repr__(self):
        return "ATN(%s: %d states, %d decisions)" % (
            self.grammar_name, len(self.states), len(self.decisions))
