"""ATN edges.

Edge alphabet per the paper: nonterminals (rule calls), terminals,
predicates, mutators, and epsilon.  Terminal edges are the only ones that
consume input; analysis ``move`` walks terminal edges and ``closure``
walks everything else.
"""

from __future__ import annotations

from typing import List, Optional

from repro.util.intervals import IntervalSet


class Predicate:
    """A semantic predicate, possibly implementing an erased synpred.

    ``code`` is a Python expression for programmer-written predicates;
    ``synpred`` names the parser rule to speculatively match for erased
    syntactic predicates (Section 4.1).  Exactly one of the two is set.
    """

    __slots__ = ("code", "synpred")

    def __init__(self, code: Optional[str] = None, synpred: Optional[str] = None):
        if (code is None) == (synpred is None):
            raise ValueError("predicate needs exactly one of code / synpred")
        self.code = code
        self.synpred = synpred

    @property
    def is_synpred(self) -> bool:
        return self.synpred is not None

    def to_dict(self) -> dict:
        """JSON-safe form for the compiled-artifact cache."""
        if self.is_synpred:
            return {"synpred": self.synpred}
        return {"code": self.code}

    @classmethod
    def from_dict(cls, data: dict) -> "Predicate":
        return cls(code=data.get("code"), synpred=data.get("synpred"))

    def __eq__(self, other):
        return (isinstance(other, Predicate)
                and self.code == other.code and self.synpred == other.synpred)

    def __hash__(self):
        return hash((self.code, self.synpred))

    def __repr__(self):
        if self.is_synpred:
            return "{synpred(%s)}?" % self.synpred
        return "{%s}?" % self.code


class SemanticAction:
    """An embedded mutator: a Python statement block.

    ``always_exec`` marks ``{{...}}`` actions that run even while the
    parser is speculating (Section 4.3).
    """

    __slots__ = ("code", "always_exec")

    def __init__(self, code: str, always_exec: bool = False):
        self.code = code
        self.always_exec = always_exec

    def __eq__(self, other):
        return (isinstance(other, SemanticAction)
                and self.code == other.code and self.always_exec == other.always_exec)

    def __hash__(self):
        return hash((self.code, self.always_exec))

    def __repr__(self):
        return "{{%s}}" % self.code if self.always_exec else "{%s}" % self.code


class Transition:
    """Base edge: target state plus match behaviour."""

    __slots__ = ("target",)

    #: True for edges that consume an input token (terminal edges).
    consumes_input = False
    #: True for edges closure may traverse freely.
    is_epsilon = False

    def __init__(self, target):
        self.target = target

    def matches(self, token_type: int) -> bool:
        return False


class EpsilonTransition(Transition):
    __slots__ = ()
    is_epsilon = True

    def __repr__(self):
        return "-ε-> %s" % self.target


class AtomTransition(Transition):
    """Match exactly one token type."""

    __slots__ = ("token_type",)
    consumes_input = True

    def __init__(self, target, token_type: int):
        super().__init__(target)
        self.token_type = token_type

    def matches(self, token_type: int) -> bool:
        return token_type == self.token_type

    def __repr__(self):
        return "-%d-> %s" % (self.token_type, self.target)


class SetTransition(Transition):
    """Match any token type in an interval set (wildcard, ``~A`` sets)."""

    __slots__ = ("token_set",)
    consumes_input = True

    def __init__(self, target, token_set: IntervalSet):
        super().__init__(target)
        self.token_set = token_set

    def matches(self, token_type: int) -> bool:
        return token_type in self.token_set

    def __repr__(self):
        return "-%r-> %s" % (self.token_set, self.target)


class RuleTransition(Transition):
    """Nonterminal edge: call ``rule_name``, return to ``follow_state``.

    ``args`` are host-language expressions for parameterised rules,
    evaluated in the caller's frame at parse time (ignored by analysis,
    which has no machine state).
    """

    __slots__ = ("rule_name", "follow_state", "args")
    is_epsilon = False  # closure handles rule edges specially (push)

    def __init__(self, target, rule_name: str, follow_state, args: Optional[List[str]] = None):
        super().__init__(target)
        self.rule_name = rule_name
        self.follow_state = follow_state
        self.args = list(args) if args else []

    def __repr__(self):
        return "-%s-> %s (follow %s)" % (self.rule_name, self.target, self.follow_state)


class PredicateTransition(Transition):
    """Semantic-predicate edge; traversed freely by closure, which records
    the predicate in the configuration for later ambiguity resolution."""

    __slots__ = ("predicate",)
    is_epsilon = True

    def __init__(self, target, predicate: Predicate):
        super().__init__(target)
        self.predicate = predicate

    def __repr__(self):
        return "-%r-> %s" % (self.predicate, self.target)


class ActionTransition(Transition):
    """Mutator edge; free for closure (state is unknown at analysis time)."""

    __slots__ = ("action",)
    is_epsilon = True

    def __init__(self, target, action: SemanticAction):
        super().__init__(target)
        self.action = action

    def __repr__(self):
        return "-%r-> %s" % (self.action, self.target)
