"""``python -m repro`` dispatches to the ``llstar`` CLI."""

import sys

from repro.tools.cli import main

sys.exit(main())
