"""Pool-worker half of the batch engine.

A worker process warm-starts exactly once: the pool initializer builds
one :class:`~repro.api.ParserHost` per process — from the artifact cache
directory when the engine has one, otherwise from the serialized
artifact payload shipped inside :class:`WorkerConfig` — and every chunk
the worker receives parses against that host.  Static analysis
(:class:`~repro.analysis.construction.DecisionAnalyzer`) never runs in a
worker; a batch's analysis cost is paid once, in the parent.

Chunk results travel back as plain picklable values: a list of
:class:`~repro.batch.engine.BatchResult` rows plus the chunk's
:class:`~repro.runtime.telemetry.MetricsRegistry` and
:class:`~repro.runtime.profiler.DecisionProfiler`, which the parent
merges into the corpus-level report.  Budget- or syntax-level failures
are caught *per input*: one pathological file fails its own row, never
the chunk or the batch.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import LLStarError
from repro.runtime.budget import ParserBudget
from repro.runtime.profiler import DecisionProfiler
from repro.runtime.telemetry import LATENCY_BUCKETS, ParseTelemetry


class WorkerConfig:
    """Everything a worker needs to warm-start, in picklable form.

    Exactly one of ``artifact_key`` / ``cache_dir`` / ``payload`` drives
    the warm start, tried in that order:

    * ``artifact_key`` (with ``cache_dir``) — the slim mode: the worker
      ``mmap``-s the binary ``.llt`` sidecar the parent already
      published, which carries the grammar text itself, so the pickled
      initargs ship no grammar and no payload and N workers share one
      page-cache copy of the tables;
    * ``cache_dir`` alone — legacy disk warm start through
      :func:`repro.api.compile_grammar` with the grammar text;
    * ``payload`` — the parent ships the serialized artifact dict
      directly (no cache directory at all).

    Either way the worker never analyzes.
    """

    __slots__ = ("grammar_text", "name", "options", "rewrite_left_recursion",
                 "strict", "cache_dir", "payload", "artifact_key",
                 "rule_name", "budget", "recover", "use_tables", "chaos")

    def __init__(self, grammar_text: Optional[str], name: Optional[str],
                 options, rewrite_left_recursion: bool, strict: bool,
                 cache_dir: Optional[str], payload: Optional[dict],
                 rule_name: Optional[str], budget: Optional[ParserBudget],
                 recover: bool, use_tables: bool, chaos=None,
                 artifact_key: Optional[str] = None):
        self.grammar_text = grammar_text
        self.name = name
        self.options = options
        self.rewrite_left_recursion = rewrite_left_recursion
        self.strict = strict
        self.cache_dir = cache_dir
        self.payload = payload
        self.artifact_key = artifact_key
        self.rule_name = rule_name
        self.budget = budget
        self.recover = recover
        self.use_tables = use_tables
        # Optional ServiceChaos fault policy (robustness testing): kills
        # apply only in pool workers; inline contexts report them as
        # typed WorkerCrashError rows instead of dying.
        self.chaos = chaos


class WorkerContext:
    """One process's warm state: the host plus per-chunk instrument set."""

    def __init__(self, config: WorkerConfig, host=None):
        from repro.api import (
            compile_grammar,
            host_from_artifact,
            host_from_cache_key,
        )
        from repro.exceptions import ArtifactFormatError

        self.config = config
        # Inline contexts receive the parent's host; only a real pool
        # worker builds its own (and only a real worker may be killed by
        # an injected fault — see run_chunk).
        self.in_worker = host is None
        if host is not None:
            self.host = host
        elif config.artifact_key is not None and config.cache_dir is not None:
            try:
                self.host = host_from_cache_key(
                    config.cache_dir, config.artifact_key, name=config.name,
                    options=config.options,
                    rewrite_left_recursion=config.rewrite_left_recursion,
                    strict=config.strict)
            except ArtifactFormatError:
                # The sidecar the parent verified was evicted between pool
                # start and this worker's boot.  With the grammar text we
                # can still warm-start (or recompile) through the store;
                # a slim config without it surfaces the failure to the
                # engine's pool-rebuild/degrade machinery.
                if config.grammar_text is None:
                    raise
                self.host = compile_grammar(
                    config.grammar_text, name=config.name,
                    options=config.options,
                    rewrite_left_recursion=config.rewrite_left_recursion,
                    strict=config.strict, cache_dir=config.cache_dir)
        elif config.cache_dir is not None:
            self.host = compile_grammar(
                config.grammar_text, name=config.name, options=config.options,
                rewrite_left_recursion=config.rewrite_left_recursion,
                strict=config.strict, cache_dir=config.cache_dir)
        else:
            self.host = host_from_artifact(
                config.payload, config.grammar_text, name=config.name,
                options=config.options,
                rewrite_left_recursion=config.rewrite_left_recursion,
                strict=config.strict)

    def run_chunk(self, chunk: Sequence[Tuple[str, str]]):
        """Parse one chunk of ``(input_id, text)`` pairs.

        Returns ``(results, metrics, profiler)``; the registry and
        profiler cover exactly this chunk, so the parent's merge over all
        chunks is the corpus total.
        """
        from repro.batch.engine import BatchResult
        from repro.runtime.parser import ParserOptions

        config = self.config
        host = self.host
        telemetry = ParseTelemetry(capture_events=False)
        profiler = DecisionProfiler()
        input_seconds = telemetry.metrics.histogram(
            "llstar_batch_input_seconds", "per-input parse latency",
            buckets=LATENCY_BUCKETS)
        ok_inputs = telemetry.metrics.counter(
            "llstar_batch_inputs_total", "corpus inputs by outcome",
            labels={"status": "ok"})
        failed_inputs = telemetry.metrics.counter(
            "llstar_batch_inputs_total", "corpus inputs by outcome",
            labels={"status": "failed"})
        tokens_total = telemetry.metrics.counter(
            "llstar_batch_tokens_total", "tokens lexed across the corpus")
        pid = os.getpid()
        results: List[BatchResult] = []
        for input_id, text in chunk:
            started = time.perf_counter()
            tokens = 0
            if config.chaos is not None:
                from repro.exceptions import WorkerCrashError
                from repro.runtime.chaos import KILL

                # In a pool worker a KILL fault hard-exits here (the
                # parent sees BrokenProcessPool); inline it becomes a
                # typed per-input failure instead.
                fault = config.chaos.apply_before_parse(
                    input_id, in_worker=self.in_worker)
                if fault == KILL:
                    error = WorkerCrashError(
                        "injected worker-kill fault on input %s" % input_id)
                    result = BatchResult(
                        input_id, ok=False, error_type=type(error).__name__,
                        error=str(error), tokens=0,
                        elapsed=time.perf_counter() - started, worker_pid=pid)
                    input_seconds.observe(result.elapsed)
                    failed_inputs.inc()
                    results.append(result)
                    continue
            try:
                stream = host.tokenize(text)
                tokens = max(0, len(stream.tokens()) - 1)  # minus EOF
                parser = host.parser(stream, options=ParserOptions(
                    profiler=profiler, telemetry=telemetry,
                    budget=config.budget, recover=config.recover,
                    use_tables=config.use_tables))
                parser.parse(config.rule_name)
                errors = len(parser.errors)
                result = BatchResult(
                    input_id, ok=not errors,
                    error_type="RecognitionError" if errors else None,
                    error=("%d recovered syntax error(s); first: %s"
                           % (errors, parser.errors[0]) if errors else None),
                    tokens=tokens, elapsed=time.perf_counter() - started,
                    worker_pid=pid)
            except (LLStarError, RecursionError) as e:
                result = BatchResult(
                    input_id, ok=False, error_type=type(e).__name__,
                    error=str(e) or type(e).__name__, tokens=tokens,
                    elapsed=time.perf_counter() - started, worker_pid=pid)
            input_seconds.observe(result.elapsed)
            tokens_total.inc(result.tokens)
            (ok_inputs if result.ok else failed_inputs).inc()
            results.append(result)
        return results, telemetry.metrics, profiler


#: Per-process singleton installed by the pool initializer.
_CONTEXT: Optional[WorkerContext] = None


def initialize_worker(config: WorkerConfig) -> None:
    """``ProcessPoolExecutor`` initializer: warm-start this process."""
    global _CONTEXT
    _CONTEXT = WorkerContext(config)


def run_chunk(chunk: Sequence[Tuple[str, str]]):
    """Top-level (picklable) chunk entry point for pool submission."""
    if _CONTEXT is None:
        raise RuntimeError("batch worker used before initialize_worker ran")
    return _CONTEXT.run_chunk(chunk)
