"""The batch engine: chunked corpus dispatch over warm worker processes.

Lifecycle of one :meth:`BatchEngine.run`:

1. The parent compiles the grammar once (through the artifact cache when
   ``cache_dir`` is set, so the analysis is also persisted for the next
   run) and serializes the compiled artifact.
2. A ``ProcessPoolExecutor`` starts ``jobs`` workers, each warm-started
   by :func:`repro.batch.worker.initialize_worker` — no worker ever runs
   static analysis.
3. Inputs are dispatched in chunks, with at most
   ``inflight_per_worker x jobs`` chunks submitted at a time
   (backpressure: a huge corpus streams through bounded memory instead
   of materializing every future up front).
4. Each chunk returns its :class:`BatchResult` rows plus a chunk-local
   metrics registry and profiler; the parent folds them into the
   corpus-level :class:`BatchReport` as chunks complete, preserving
   input order in the final result list.

``jobs=0`` runs the same chunk code inline in the parent process —
deterministic, pool-free execution for debugging and tests.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.batch.worker import (
    WorkerConfig,
    WorkerContext,
    initialize_worker,
    run_chunk,
)
from repro.runtime.budget import ParserBudget
from repro.runtime.profiler import DecisionProfiler, ProfileReport
from repro.runtime.telemetry import MetricsRegistry


class BatchResult:
    """Outcome of one corpus input.

    ``ok`` is False when the input failed to lex/parse or blew its
    budget; ``error_type`` then names the exception class
    (``BudgetExceededError``, ``NoViableAltError``, ...) so corpus-level
    tooling can bucket failures without string-matching messages.
    """

    __slots__ = ("input_id", "ok", "error_type", "error", "tokens",
                 "elapsed", "worker_pid")

    def __init__(self, input_id: str, ok: bool, error_type: Optional[str],
                 error: Optional[str], tokens: int, elapsed: float,
                 worker_pid: int):
        self.input_id = input_id
        self.ok = ok
        self.error_type = error_type
        self.error = error
        self.tokens = tokens
        self.elapsed = elapsed
        self.worker_pid = worker_pid

    def to_dict(self) -> dict:
        return {"input": self.input_id, "ok": self.ok,
                "error_type": self.error_type, "error": self.error,
                "tokens": self.tokens, "elapsed": self.elapsed,
                "worker_pid": self.worker_pid}

    def __repr__(self):
        status = "ok" if self.ok else "FAILED(%s)" % self.error_type
        return "BatchResult(%s %s, %d tokens, %.4fs)" % (
            self.input_id, status, self.tokens, self.elapsed)


class BatchReport:
    """Corpus-level aggregate: ordered results + merged instruments."""

    def __init__(self, results: List[BatchResult], metrics: MetricsRegistry,
                 profiler: DecisionProfiler, wall_seconds: float, jobs: int,
                 chunks: int, pool_rebuilds: int = 0,
                 degraded_to_inline: bool = False):
        self.results = results
        self.metrics = metrics
        self.profiler = profiler
        self.wall_seconds = wall_seconds
        self.jobs = jobs
        self.chunks = chunks
        #: Times the worker pool died and was rebuilt mid-corpus.
        self.pool_rebuilds = pool_rebuilds
        #: True when pool failures exhausted the rebuild allowance and
        #: the remaining chunks ran inline in the parent instead.
        self.degraded_to_inline = degraded_to_inline

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[BatchResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok_count(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def total_tokens(self) -> int:
        return sum(r.tokens for r in self.results)

    @property
    def tokens_per_second(self) -> float:
        return self.total_tokens / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def files_per_second(self) -> float:
        return self.total / self.wall_seconds if self.wall_seconds else 0.0

    def profile_report(self, analysis=None) -> ProfileReport:
        """Paper-style Table 3/4 aggregates over the whole corpus."""
        return self.profiler.report(analysis)

    def to_json(self) -> dict:
        return {
            "inputs": self.total,
            "ok": self.ok_count,
            "failed": self.total - self.ok_count,
            "jobs": self.jobs,
            "chunks": self.chunks,
            "wall_seconds": self.wall_seconds,
            "total_tokens": self.total_tokens,
            "tokens_per_second": self.tokens_per_second,
            "files_per_second": self.files_per_second,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded_to_inline": self.degraded_to_inline,
            "results": [r.to_dict() for r in self.results],
            "metrics": self.metrics.to_json(),
        }

    def summary(self) -> str:
        lines = ["parsed %d/%d inputs ok in %.3fs (%d jobs, %d chunks)"
                 % (self.ok_count, self.total, self.wall_seconds, self.jobs,
                    self.chunks),
                 "throughput: %.0f tokens/s, %.1f files/s (%d tokens)"
                 % (self.tokens_per_second, self.files_per_second,
                    self.total_tokens)]
        if self.pool_rebuilds:
            lines.append("  pool died %d time(s) and was rebuilt%s"
                         % (self.pool_rebuilds,
                            "; finished inline (degraded)"
                            if self.degraded_to_inline else ""))
        for failure in self.failures:
            lines.append("  FAILED %s: [%s] %s"
                         % (failure.input_id, failure.error_type, failure.error))
        return "\n".join(lines)

    def __repr__(self):
        return "BatchReport(%d/%d ok, %.0f tok/s)" % (
            self.ok_count, self.total, self.tokens_per_second)


class BatchEngine:
    """Parses corpora of inputs against one grammar over a worker pool.

    ``jobs``
        Worker processes (default ``os.cpu_count()``); ``0`` runs inline
        in the parent, with identical results and aggregation.
    ``chunk_size``
        Inputs per dispatched chunk (default: corpus size balanced over
        ``4 x jobs`` chunks, clamped to [1, 32]).
    ``inflight_per_worker``
        Backpressure window: at most ``jobs x inflight_per_worker``
        chunks are in flight at once.
    ``budget`` / ``recover`` / ``rule_name``
        Applied per input inside the workers; a
        :class:`~repro.exceptions.BudgetExceededError` or
        :class:`~repro.exceptions.RecognitionError` on one input fails
        only that input's :class:`BatchResult`.
    ``cache_dir``
        Compile through the artifact cache; workers then warm-start from
        disk instead of receiving the payload in their initializer.
    ``max_pool_rebuilds``
        How many times a broken pool (a worker killed mid-corpus) is
        rebuilt and the lost chunks retried before the engine degrades
        to inline execution for the remainder (default 1).
    ``chaos``
        Optional :class:`~repro.runtime.chaos.ServiceChaos` fault policy
        applied per input in the workers (robustness testing).
    """

    def __init__(self, grammar_text: str, name: Optional[str] = None,
                 options=None, jobs: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 inflight_per_worker: int = 2,
                 rule_name: Optional[str] = None,
                 budget: Optional[ParserBudget] = None,
                 recover: bool = False, use_tables: bool = True,
                 cache_dir: Optional[str] = None,
                 rewrite_left_recursion: bool = True, strict: bool = True,
                 parallel: Optional[int] = None,
                 max_pool_rebuilds: int = 1, chaos=None):
        from repro.api import compile_grammar

        if jobs is not None and jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = inline)")
        if inflight_per_worker < 1:
            raise ValueError("inflight_per_worker must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 or None")
        if max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        self.jobs = (os.cpu_count() or 1) if jobs is None else jobs
        self.chunk_size = chunk_size
        self.inflight_per_worker = inflight_per_worker
        self.max_pool_rebuilds = max_pool_rebuilds
        # Compile once in the parent; with a cache_dir this also persists
        # the artifact (JSON + mmap sidecar) the workers warm-start from.
        self.host = compile_grammar(
            grammar_text, name=name, options=options,
            rewrite_left_recursion=rewrite_left_recursion, strict=strict,
            cache_dir=cache_dir, parallel=parallel)
        payload = None
        worker_key = None
        if cache_dir is None:
            from repro.cache import artifact_to_dict, grammar_fingerprint

            payload = artifact_to_dict(
                self.host.grammar, self.host.analysis, self.host.lexer_spec,
                grammar_fingerprint(grammar_text, name))
        else:
            worker_key = self._probe_worker_key(
                grammar_text, name, options, rewrite_left_recursion,
                cache_dir)
        if worker_key is not None:
            # Slim initargs: the sidecar carries the grammar text, so the
            # pickled config ships neither source nor payload and every
            # worker maps the same page-cache copy of the tables.
            self._config = WorkerConfig(
                None, name, options, rewrite_left_recursion, strict,
                cache_dir, None, rule_name, budget, recover, use_tables,
                chaos=chaos, artifact_key=worker_key)
        else:
            self._config = WorkerConfig(
                grammar_text, name, options, rewrite_left_recursion, strict,
                cache_dir, payload, rule_name, budget, recover, use_tables,
                chaos=chaos)

    def _probe_worker_key(self, grammar_text, name, options,
                          rewrite_left_recursion, cache_dir):
        """The artifact key workers can boot from alone, or None.

        Slim (key-only) worker initargs require a mapped sidecar that
        carries the grammar source; when the parent's own host is not
        mmap-backed (first compile in an unwritable directory, sourceless
        sidecar from an older writer) the probe mmaps the file once to
        check, and failing that the engine falls back to shipping the
        grammar text.
        """
        from repro.cache import ArtifactStore, artifact_key

        key = artifact_key(grammar_text, name, options,
                           rewrite_left_recursion)
        mapped = self.host.mapped_artifact
        if mapped is not None:
            return key if mapped.grammar_source is not None else None
        store = ArtifactStore(cache_dir, sweep_orphans=False)
        probe = store.load_mapped(key)
        if probe is None:
            return None
        usable = probe.grammar_source is not None
        probe.close()
        return key if usable else None

    # -- corpus preparation ----------------------------------------------------

    def _chunks(self, items: Sequence[Tuple[str, str]]) -> List[List[Tuple[str, str]]]:
        size = self.chunk_size
        if size is None:
            workers = max(1, self.jobs)
            size = max(1, min(32, -(-len(items) // (workers * 4))))
        return [list(items[i:i + size]) for i in range(0, len(items), size)]

    # -- execution -------------------------------------------------------------

    def run(self, inputs: Iterable[Tuple[str, str]]) -> BatchReport:
        """Parse every ``(input_id, text)`` pair; returns the corpus report."""
        items = [(str(input_id), text) for input_id, text in inputs]
        chunks = self._chunks(items)
        started = time.perf_counter()
        rebuilds, degraded = 0, False
        if self.jobs == 0:
            outcomes = self._run_inline(chunks)
        else:
            outcomes, rebuilds, degraded = self._run_pool(chunks)
        wall = time.perf_counter() - started
        return self._aggregate(outcomes, chunks, wall, rebuilds, degraded)

    def run_paths(self, paths: Iterable[str]) -> BatchReport:
        """Parse files by path (the path is the input id)."""
        corpus = []
        for path in paths:
            with open(path) as f:
                corpus.append((path, f.read()))
        return self.run(corpus)

    def _run_inline(self, chunks):
        context = WorkerContext(self._config, host=self.host)
        return {i: context.run_chunk(chunk) for i, chunk in enumerate(chunks)}

    def _run_pool(self, chunks):
        """Pooled execution with crash tolerance.

        A worker death breaks the whole ``ProcessPoolExecutor`` —
        *every* in-flight future raises :class:`BrokenProcessPool`, not
        just the chunk that was on the dead worker.  Rather than fail
        those chunks (the pre-fix behaviour aborted the corpus), the
        lost chunk indexes are collected and retried on a freshly built
        pool, up to ``max_pool_rebuilds`` times; after that the engine
        degrades to inline execution in the parent, where each input
        still succeeds or fails individually with a typed error.
        """
        outcomes: Dict[int, tuple] = {}
        remaining = list(range(len(chunks)))
        rebuilds, degraded = 0, False
        while remaining:
            remaining = self._pool_pass(chunks, remaining, outcomes)
            if not remaining:
                break
            if rebuilds >= self.max_pool_rebuilds:
                # The rebuilt pool died too: stop burning processes and
                # finish the stragglers inline (reduced concurrency, but
                # per-input isolation semantics are unchanged).
                degraded = True
                context = WorkerContext(self._config, host=self.host)
                for index in remaining:
                    outcomes[index] = context.run_chunk(chunks[index])
                break
            rebuilds += 1
        return outcomes, rebuilds, degraded

    def _pool_pass(self, chunks, indexes, outcomes):
        """One pool lifetime: run ``indexes`` until done or the pool
        breaks.  Returns the (ordered) chunk indexes lost to breakage."""
        window = self.jobs * self.inflight_per_worker
        broken: List[int] = []
        pool_dead = False
        with ProcessPoolExecutor(max_workers=self.jobs,
                                 initializer=initialize_worker,
                                 initargs=(self._config,)) as pool:
            pending: Dict[object, int] = {}

            def drain(done_set):
                nonlocal pool_dead
                for future in done_set:
                    index = pending.pop(future)
                    try:
                        outcomes[index] = future.result()
                    except BrokenProcessPool:
                        broken.append(index)
                        pool_dead = True
                    except Exception as e:  # chunk-level loss
                        outcomes[index] = self._failed_chunk(chunks[index], e)

            for index in indexes:
                if not pool_dead and len(pending) >= window:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    drain(done)
                if pool_dead:
                    broken.append(index)  # never submit to a dead pool
                    continue
                try:
                    pending[pool.submit(run_chunk, chunks[index])] = index
                except RuntimeError:  # pool broke between drain and submit
                    broken.append(index)
                    pool_dead = True
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                drain(done)
        return sorted(broken)

    @staticmethod
    def _failed_chunk(chunk, error):
        """Chunk-level loss (worker crash, broken pool): fail each input
        of the chunk individually so the corpus accounting stays exact."""
        results = [BatchResult(input_id, ok=False,
                               error_type=type(error).__name__,
                               error=str(error) or type(error).__name__,
                               tokens=0, elapsed=0.0, worker_pid=-1)
                   for input_id, _ in chunk]
        return results, MetricsRegistry(), DecisionProfiler()

    def _aggregate(self, outcomes, chunks, wall: float, rebuilds: int = 0,
                   degraded: bool = False) -> BatchReport:
        results: List[BatchResult] = []
        metrics = MetricsRegistry()
        profiler = DecisionProfiler()
        for index in range(len(chunks)):
            chunk_results, chunk_metrics, chunk_profiler = outcomes[index]
            results.extend(chunk_results)
            metrics.merge(chunk_metrics)
            profiler.merge(chunk_profiler)
        metrics.gauge("llstar_batch_workers", "worker processes").set(self.jobs)
        metrics.counter("llstar_batch_chunks_total",
                        "chunks dispatched").inc(len(chunks))
        if rebuilds:
            metrics.counter("llstar_batch_pool_rebuilds_total",
                            "worker pools rebuilt after a crash").inc(rebuilds)
        metrics.gauge("llstar_batch_pool_degraded",
                      "1 when the corpus finished inline after repeated "
                      "pool deaths").set(1 if degraded else 0)
        return BatchReport(results, metrics, profiler, wall, self.jobs,
                           len(chunks), pool_rebuilds=rebuilds,
                           degraded_to_inline=degraded)


def parse_corpus(grammar_text: str, inputs: Iterable[Tuple[str, str]],
                 **engine_kwargs) -> BatchReport:
    """One-shot convenience: build a :class:`BatchEngine` and run it."""
    return BatchEngine(grammar_text, **engine_kwargs).run(inputs)
