"""Corpus-scale batch parsing over a process pool with warm artifacts.

The paper's evaluation (Section 6) is a *corpus* workload — 12,920 JDK
Java files parsed in aggregate — and its whole thesis is that static
analysis makes the runtime cheap enough to scale.  This package is that
thesis applied operationally: pay for grammar compilation **once**, then
spread the per-input parsing across worker processes that never re-run
:class:`~repro.analysis.construction.DecisionAnalyzer`.

* :class:`~repro.batch.engine.BatchEngine` — compiles (or cache-loads)
  the grammar in the parent, then dispatches chunks of inputs to a
  ``ProcessPoolExecutor`` whose initializer warm-starts each worker from
  the PR-1 artifact cache (``cache_dir=...``) or from the serialized
  artifact payload shipped in the initializer arguments.  Dispatch is
  chunked with a bounded in-flight window, so a million-file corpus
  never materializes a million futures.
* Per-input isolation — every input parses under its own
  :class:`~repro.runtime.budget.ParserBudget` accounting; a
  pathological or malformed input fails its own
  :class:`~repro.batch.engine.BatchResult` while the rest of the corpus
  completes.
* Corpus aggregation — each worker fills its own
  :class:`~repro.runtime.telemetry.MetricsRegistry` and
  :class:`~repro.runtime.profiler.DecisionProfiler`; the parent merges
  the snapshots (:meth:`MetricsRegistry.merge`,
  :meth:`DecisionProfiler.merge`) into one corpus-level
  :class:`~repro.batch.engine.BatchReport` with throughput totals.

CLI: ``llstar batch grammar.g inputs... --jobs N --metrics-out FILE``.
"""

from repro.batch.engine import BatchEngine, BatchReport, BatchResult, parse_corpus

__all__ = [
    "BatchEngine",
    "BatchReport",
    "BatchResult",
    "parse_corpus",
]
