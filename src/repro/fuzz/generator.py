"""Grammar-driven sentence generation.

:class:`SentenceGenerator` walks a compiled grammar's rule AST and emits
token sequences that are, by construction, derivable from the start rule
(modulo predicates, which the walk ignores).  Three properties matter for
the differential harness built on top of it:

* **Seeded determinism** — sentence ``i`` of a generator seeded with
  ``s`` is a pure function of ``(s, i)``; a :class:`Disagreement` report
  quoting ``(grammar, seed, index)`` is exactly reproducible.
* **Coverage steering** — alternative choice is weighted by
  ``1 / (1 + hits)`` per choice point, so rarely-taken alternatives and
  loop arms are pulled into the corpus instead of the walk collapsing
  onto the highest-fanout rules.
* **Bounded closure** — once the depth or token budget trips, the walk
  switches to *closing mode*: every remaining choice takes the
  min-cost alternative (shortest completion, precomputed by fixpoint),
  optionals and stars are skipped, and plus-loops run once.  That makes
  termination a structural guarantee rather than a retry loop.

Sentences carry both the token-name sequence (always) and rendered
source text (when every token has a lexer exemplar that survives a
tokenize round-trip).  A seeded :meth:`SentenceGenerator.mutate` pass
corrupts sentences for recovery testing.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import GrammarError, LLStarError
from repro.grammar import ast
from repro.runtime.token import EOF

INF = float("inf")

_PRINTABLE_LO, _PRINTABLE_HI = 33, 126  # complement universe for ~[...] sets


class Sentence:
    """One generated input: token names, optional text, provenance."""

    __slots__ = ("grammar_name", "seed", "index", "token_names", "text",
                 "mutations")

    def __init__(self, grammar_name: str, seed: int, index: int,
                 token_names: Tuple[str, ...], text: Optional[str] = None,
                 mutations: Tuple[str, ...] = ()):
        self.grammar_name = grammar_name
        self.seed = seed
        self.index = index
        self.token_names = tuple(token_names)
        self.text = text
        self.mutations = tuple(mutations)

    @property
    def size(self) -> int:
        return len(self.token_names)

    @property
    def mutated(self) -> bool:
        return bool(self.mutations)

    def to_dict(self) -> dict:
        return {
            "grammar": self.grammar_name,
            "seed": self.seed,
            "index": self.index,
            "tokens": list(self.token_names),
            "text": self.text,
            "mutations": list(self.mutations),
        }

    def __repr__(self):
        tag = " mutated" if self.mutations else ""
        return "Sentence(%s seed=%d #%d, %d tokens%s)" % (
            self.grammar_name, self.seed, self.index, self.size, tag)


class SentenceGenerator:
    """Seeded, coverage-guided derivation walker for one compiled grammar.

    Parameters
    ----------
    host:
        A :class:`repro.api.ParserHost` (compiled grammar).
    seed:
        Corpus seed.  Sentence ``i`` uses ``random.Random(seed * 1_000_003
        + i)`` so individual sentences are independently reproducible.
    max_depth:
        Rule-invocation depth at which the walk switches to closing mode.
    max_tokens:
        Emitted-token count at which the walk switches to closing mode.
    max_loop:
        Iteration cap for ``*``/``+`` loops while the budget lasts.
    """

    def __init__(self, host, seed: int = 0, max_depth: int = 20,
                 max_tokens: int = 200, max_loop: int = 2):
        if max_depth < 1 or max_tokens < 1 or max_loop < 1:
            raise ValueError("max_depth, max_tokens and max_loop must be >= 1")
        self.host = host
        self.grammar = host.grammar
        self.seed = seed
        self.max_depth = max_depth
        self.max_tokens = max_tokens
        self.max_loop = max_loop
        self.coverage: Dict[str, Dict[int, int]] = {}
        self._choice_keys = self._assign_choice_keys()
        self._rule_cost = self._compute_rule_costs()
        start = self.grammar.start_rule
        if self._rule_cost.get(start, INF) == INF:
            raise GrammarError(
                "rule %s has no finite derivation; cannot generate" % start)
        self._emittable = self._emittable_token_names()
        self._exemplars: Dict[str, Optional[str]] = {}

    # -- public API ---------------------------------------------------------

    def generate(self, n: int, start_rule: Optional[str] = None) -> List[Sentence]:
        return [self.sentence(i, start_rule) for i in range(n)]

    def sentence(self, index: int, start_rule: Optional[str] = None) -> Sentence:
        """Sentence ``index`` of this corpus — pure in ``(seed, index)``
        up to coverage steering, which depends on generation order."""
        rng = random.Random(self.seed * 1_000_003 + index)
        out: List[str] = []
        self._emit_rule(start_rule or self.grammar.start_rule, rng, out, 0)
        names = tuple(out)
        return Sentence(self.grammar.name, self.seed, index, names,
                        text=self.render(names))

    def mutate(self, sentence: Sentence, salt: int = 0,
               min_ops: int = 1, max_ops: int = 3) -> Sentence:
        """Corrupt a sentence with seeded token-level damage.

        Returns a new :class:`Sentence` recording each applied operation
        (``delete@3:ID`` style) so failures replay from the report alone.
        """
        rng = random.Random((self.seed * 1_000_003 + sentence.index) * 7919
                            + salt + 1)
        names = list(sentence.token_names)
        ops: List[str] = []
        for _ in range(rng.randint(min_ops, max_ops)):
            if not names:
                name = rng.choice(self._emittable or ["<EOF>"])
                names.append(name)
                ops.append("insert@0:%s" % name)
                continue
            op = rng.choice(("delete", "duplicate", "substitute", "swap",
                             "truncate"))
            i = rng.randrange(len(names))
            if op == "delete":
                ops.append("delete@%d:%s" % (i, names.pop(i)))
            elif op == "duplicate":
                names.insert(i, names[i])
                ops.append("duplicate@%d:%s" % (i, names[i]))
            elif op == "substitute" and self._emittable:
                repl = rng.choice(self._emittable)
                ops.append("substitute@%d:%s->%s" % (i, names[i], repl))
                names[i] = repl
            elif op == "swap" and len(names) >= 2:
                j = rng.randrange(len(names) - 1)
                names[j], names[j + 1] = names[j + 1], names[j]
                ops.append("swap@%d" % j)
            elif op == "truncate" and len(names) >= 2:
                cut = rng.randrange(1, len(names))
                ops.append("truncate@%d:-%d" % (cut, len(names) - cut))
                del names[cut:]
        names_t = tuple(names)
        return Sentence(sentence.grammar_name, self.seed, sentence.index,
                        names_t, text=self.render(names_t),
                        mutations=tuple(ops))

    def render(self, token_names: Sequence[str]) -> Optional[str]:
        """Source text whose tokenization reproduces ``token_names``.

        Returns None when any token lacks a lexer exemplar or the joined
        text does not round-trip (keyword collisions, skip-channel
        tokens, grammars without lexer rules).  The sentence is still
        usable as a raw token stream in that case.
        """
        if self.host.lexer_spec is None:
            return None
        parts = []
        for name in token_names:
            lexeme = self._exemplar(name)
            if lexeme is None:
                return None
            parts.append(lexeme)
        text = " ".join(parts)
        if self._token_types(text) != self._intended_types(token_names):
            return None
        return text

    def coverage_report(self) -> Dict[str, Dict[int, int]]:
        """Hit counts per choice point (rule or ``rule#n`` subposition)."""
        return {k: dict(v) for k, v in self.coverage.items()}

    # -- derivation walk ----------------------------------------------------

    def _emit_rule(self, name: str, rng, out: List[str], depth: int) -> None:
        rule = self.grammar.rule(name)
        costs = [self._seq_cost(alt.elements) for alt in rule.alternatives]
        if rule.num_alternatives == 1:
            choice = 0
        else:
            choice = self._choose(self._choice_keys[id(rule)], costs, rng,
                                  self._closing(out, depth))
        for el in rule.alternatives[choice].elements:
            self._emit(el, rng, out, depth)

    def _emit(self, el: ast.Element, rng, out: List[str], depth: int) -> None:
        closing = self._closing(out, depth)
        if isinstance(el, ast.TokenRef):
            out.append(el.name)
        elif isinstance(el, ast.Literal):
            out.append("'%s'" % el.text)
        elif isinstance(el, ast.RuleRef):
            self._emit_rule(el.name, rng, out, depth + 1)
        elif isinstance(el, ast.Sequence):
            for child in el.elements:
                self._emit(child, rng, out, depth)
        elif isinstance(el, ast.Block):
            costs = [self._seq_cost(alt.elements) for alt in el.alternatives]
            choice = self._choose(self._choice_keys[id(el)], costs, rng, closing)
            self._emit(el.alternatives[choice], rng, out, depth)
        elif isinstance(el, ast.Optional_):
            arm = 0 if closing else self._choose(
                self._choice_keys[id(el)], [0, self._el_cost(el.element)],
                rng, closing)
            if arm == 1:
                self._emit(el.element, rng, out, depth)
        elif isinstance(el, ast.Star):
            reps = 0
            if not closing:
                arm = self._choose(self._choice_keys[id(el)],
                                   [0, self._el_cost(el.element)], rng, closing)
                if arm == 1:
                    reps = rng.randint(1, self.max_loop)
            for _ in range(reps):
                self._emit(el.element, rng, out, depth)
        elif isinstance(el, ast.Plus):
            reps = 1
            if not closing:
                arm = self._choose(self._choice_keys[id(el)],
                                   [0, self._el_cost(el.element)], rng, closing)
                if arm == 1 and self.max_loop >= 2:
                    reps = rng.randint(2, self.max_loop)
            for _ in range(reps):
                self._emit(el.element, rng, out, depth)
        elif isinstance(el, ast.Wildcard):
            if not self._emittable:
                raise GrammarError("wildcard with no emittable tokens")
            out.append(rng.choice(self._emittable))
        elif isinstance(el, ast.NotToken):
            allowed = self._not_token_choices(el)
            if not allowed:
                raise GrammarError("~(%s) excludes every emittable token"
                                   % "|".join(el.token_names))
            out.append(rng.choice(allowed))
        elif isinstance(el, (ast.Epsilon, ast.Action, ast.SemanticPredicate,
                             ast.SyntacticPredicate)):
            return  # predicates/actions never consume input
        else:  # pragma: no cover - new AST nodes must be handled explicitly
            raise GrammarError("cannot generate from element %r" % el)

    def _closing(self, out: List[str], depth: int) -> bool:
        return depth >= self.max_depth or len(out) >= self.max_tokens

    def _choose(self, key: str, costs: List[float], rng,
                closing: bool) -> int:
        hits = self.coverage.setdefault(key, {})
        finite = [i for i, c in enumerate(costs) if c < INF]
        if not finite:
            raise GrammarError("choice %s has no finite alternative" % key)
        if closing:
            choice = min(finite, key=lambda i: (costs[i], i))
        else:
            weights = [1.0 / (1.0 + hits.get(i, 0)) if c < INF else 0.0
                       for i, c in enumerate(costs)]
            choice = rng.choices(range(len(costs)), weights=weights)[0]
        hits[choice] = hits.get(choice, 0) + 1
        return choice

    # -- min-cost closure table --------------------------------------------

    def _assign_choice_keys(self) -> Dict[int, str]:
        keys: Dict[int, str] = {}
        for rule in self.grammar.parser_rules:
            keys[id(rule)] = "rule:%s" % rule.name
            n = 0
            for alt in rule.alternatives:
                for el in alt.elements:
                    for node in el.walk():
                        if isinstance(node, (ast.Block, ast.Optional_,
                                             ast.Star, ast.Plus)):
                            keys[id(node)] = "%s#%d" % (rule.name, n)
                            n += 1
        return keys

    def _compute_rule_costs(self) -> Dict[str, float]:
        cost = {r.name: INF for r in self.grammar.parser_rules}
        changed = True
        while changed:
            changed = False
            for rule in self.grammar.parser_rules:
                best = min(self._seq_cost(alt.elements, cost)
                           for alt in rule.alternatives)
                if best < cost[rule.name]:
                    cost[rule.name] = best
                    changed = True
        return cost

    def _seq_cost(self, elements: Sequence[ast.Element],
                  table: Optional[Dict[str, float]] = None) -> float:
        return sum(self._el_cost(el, table) for el in elements)

    def _el_cost(self, el: ast.Element,
                 table: Optional[Dict[str, float]] = None) -> float:
        table = self._rule_cost if table is None else table
        if isinstance(el, (ast.TokenRef, ast.Literal, ast.Wildcard,
                           ast.NotToken)):
            return 1
        if isinstance(el, ast.RuleRef):
            return table.get(el.name, INF)
        if isinstance(el, ast.Sequence):
            return self._seq_cost(el.elements, table)
        if isinstance(el, ast.Block):
            return min(self._seq_cost(alt.elements, table)
                       for alt in el.alternatives)
        if isinstance(el, (ast.Optional_, ast.Star)):
            return 0
        if isinstance(el, ast.Plus):
            return self._el_cost(el.element, table)
        return 0  # Epsilon, Action, predicates

    # -- token universe -----------------------------------------------------

    def _emittable_token_names(self) -> List[str]:
        """Token names valid for ``token_stream_from_types``, excluding
        EOF and skip-channel lexer rules (they would vanish in text)."""
        vocab = self.grammar.vocabulary
        skip_names = {r.name for r in self.grammar.lexer_rules
                      if "skip" in r.commands}
        names = []
        for t in range(1, vocab.max_type + 1):
            name = vocab.name_of(t)
            if name.strip("'") in skip_names or name in skip_names:
                continue
            names.append(name)
        return names

    def _not_token_choices(self, el: ast.NotToken) -> List[str]:
        forbidden = set()
        vocab = self.grammar.vocabulary
        for name in el.token_names:
            if name.startswith("'") and name.endswith("'"):
                t = vocab.type_of_literal(name[1:-1])
            else:
                t = vocab.type_of(name)
            if t is not None:
                forbidden.add(t)
        out = []
        for name in self._emittable:
            if name.startswith("'"):
                t = vocab.type_of_literal(name[1:-1])
            else:
                t = vocab.type_of(name)
            if t not in forbidden:
                out.append(name)
        return out

    def _intended_types(self, token_names: Sequence[str]) -> Optional[List[int]]:
        vocab = self.grammar.vocabulary
        types = []
        for name in token_names:
            if name.startswith("'") and name.endswith("'") and len(name) >= 2:
                t = vocab.type_of_literal(name[1:-1])
            else:
                t = vocab.type_of(name)
            if t is None:
                return None
            types.append(t)
        return types

    def _token_types(self, text: str) -> Optional[List[int]]:
        try:
            stream = self.host.tokenize(text)
        except LLStarError:
            return None
        return [t.type for t in stream.tokens() if t.type != EOF]

    # -- lexeme exemplars ---------------------------------------------------

    def _exemplar(self, name: str) -> Optional[str]:
        if name in self._exemplars:
            return self._exemplars[name]
        lexeme = self._build_exemplar(name)
        self._exemplars[name] = lexeme
        return lexeme

    def _build_exemplar(self, name: str) -> Optional[str]:
        vocab = self.grammar.vocabulary
        if name.startswith("'") and name.endswith("'") and len(name) >= 2:
            text = name[1:-1]
            expected = vocab.type_of_literal(text)
            if expected is not None and self._token_types(text) == [expected]:
                return text
            return None
        expected = vocab.type_of(name)
        rule = self.grammar.rules.get(name)
        if expected is None or rule is None or not rule.is_lexer_rule:
            return None
        if "skip" in rule.commands:
            return None
        for attempt in range(8):
            rng = random.Random(expected * 131071 + attempt)
            text = "".join(self._lexeme(ast.Sequence(alt.elements), rng, 0)
                           for alt in [rule.alternatives[
                               attempt % rule.num_alternatives]])
            if text and self._token_types(text) == [expected]:
                return text
        return None

    def _lexeme(self, el: ast.Element, rng, depth: int) -> str:
        if isinstance(el, ast.Literal):
            return el.text
        if isinstance(el, ast.CharSet):
            ivs = el.intervals
            if el.negated:
                ivs = ivs.complement(_PRINTABLE_LO, _PRINTABLE_HI)
            pool = []
            for ch in ivs:
                if _PRINTABLE_LO <= ch <= _PRINTABLE_HI or ch in (9, 10, 13, 32):
                    pool.append(ch)
                if len(pool) >= 32:
                    break
            if not pool:
                pool = [ivs.min()]
            return chr(rng.choice(pool))
        if isinstance(el, ast.CharRange):
            return chr(rng.randint(ord(el.lo), ord(el.hi)))
        if isinstance(el, ast.Wildcard):
            return rng.choice("abcdefghijklmnopqrstuvwxyz")
        if isinstance(el, ast.RuleRef):
            sub = self.grammar.rules.get(el.name)
            if sub is None:
                return ""
            alt = sub.alternatives[0 if depth > 8 else
                                   rng.randrange(sub.num_alternatives)]
            return "".join(self._lexeme(e, rng, depth + 1)
                           for e in alt.elements)
        if isinstance(el, ast.TokenRef):
            # lexer-side reference to another lexer rule
            sub = self.grammar.rules.get(el.name)
            if sub is None:
                return ""
            alt = sub.alternatives[0 if depth > 8 else
                                   rng.randrange(sub.num_alternatives)]
            return "".join(self._lexeme(e, rng, depth + 1)
                           for e in alt.elements)
        if isinstance(el, ast.Sequence):
            return "".join(self._lexeme(e, rng, depth) for e in el.elements)
        if isinstance(el, ast.Block):
            alt = el.alternatives[0 if depth > 8 else
                                  rng.randrange(len(el.alternatives))]
            return self._lexeme(alt, rng, depth + 1)
        if isinstance(el, ast.Optional_):
            if depth <= 8 and rng.random() < 0.4:
                return self._lexeme(el.element, rng, depth + 1)
            return ""
        if isinstance(el, ast.Star):
            reps = 0 if depth > 8 else rng.randint(0, 2)
            return "".join(self._lexeme(el.element, rng, depth + 1)
                           for _ in range(reps))
        if isinstance(el, ast.Plus):
            reps = 1 if depth > 8 else rng.randint(1, 2)
            return "".join(self._lexeme(el.element, rng, depth + 1)
                           for _ in range(reps))
        return ""  # Epsilon, Action, predicates
