"""Cross-backend differential parsing harness.

The paper's central claim — LL(*) prediction is outcome-equivalent to
full backtracking at a fraction of the cost — is checked here by brute
force: every generated sentence is parsed by every available backend and
the results are compared under a policy that separates *bugs* from
*known semantic differences*:

* **Tree backends** (interpreter with flat tables, interpreter on the
  DFA graph, the generated codegen parser, and the strict LL(k) parser
  when :func:`repro.baselines.llk.llk_viability` admits the grammar)
  must agree exactly: same accept/reject verdict and, when accepting,
  identical ``to_spanned_sexpr()`` digests — shape *and* per-node
  token-index spans (``tree-accept`` / ``tree-digest`` disagreements).
* **CFG backends** (GLR, Earley) must agree with each other
  (``cfg-accept``); Earley additionally serves as the context-free
  *oracle*: any other backend accepting a sentence the oracle rejects is
  an ``unsound`` disagreement.
* **Packrat** is a PEG: ordered choice legitimately rejects some
  sentences the CFG admits, so packrat-rejects-what-LL-accepts is
  counted as a ``peg_divergence`` statistic, not a disagreement; the
  reverse (packrat accepts, oracle rejects) is still ``unsound``.
* The interpreter rejecting an unmutated generated sentence is the
  ``ll_rejected`` statistic (the generator ignores predicates and
  ordered-choice ambiguity resolution), not a disagreement.

Each failing case is re-run through greedy token-deletion minimization
(ddmin-style, bounded) before being reported as a structured
:class:`Disagreement`.  A :class:`BatchEngine` pass cross-checks that
the batch pipeline's per-input verdicts match the in-process
interpreter on every text-renderable sentence (``batch`` disagreement).
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import compile_grammar
from repro.baselines.earley import EarleyParser
from repro.baselines.glr import GLRParser
from repro.baselines.llk import LLkParser
from repro.baselines.packrat import PackratParser
from repro.codegen import generate_python
from repro.codegen.support import GeneratedParser
from repro.exceptions import (
    BudgetExceededError,
    GrammarError,
    LLStarError,
    RecognitionError,
)
from repro.fuzz.generator import Sentence, SentenceGenerator
from repro.runtime.budget import ParserBudget
from repro.runtime.parser import ParserOptions

TREE = "tree"
CFG = "cfg"
PEG = "peg"

ALL_BACKENDS = ("interp", "interp-graph", "codegen", "llk",
                "packrat", "glr", "earley")
_KIND = {"interp": TREE, "interp-graph": TREE, "codegen": TREE, "llk": TREE,
         "packrat": PEG, "glr": CFG, "earley": CFG}


def tree_digest(tree) -> str:
    """Stable short digest of a parse tree's canonical *spanned*
    s-expression: shape, token identity, and every node's
    ``(start, stop)`` token-index span.  Two backends agreeing here
    agree not just on structure but on which stream positions each rule
    consumed — the provenance contract the rewriter depends on."""
    return hashlib.sha1(
        tree.to_spanned_sexpr().encode("utf-8")).hexdigest()[:16]


class BackendResult:
    """One backend's verdict on one sentence.

    ``accepted`` is True/False for a definite verdict and None when the
    backend could not decide (budget exhaustion, internal limits);
    indeterminate results are excluded from comparison.
    """

    __slots__ = ("name", "kind", "accepted", "digest", "error_type", "seconds")

    def __init__(self, name: str, kind: str, accepted: Optional[bool],
                 digest: Optional[str] = None,
                 error_type: Optional[str] = None, seconds: float = 0.0):
        self.name = name
        self.kind = kind
        self.accepted = accepted
        self.digest = digest
        self.error_type = error_type
        self.seconds = seconds

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "accepted": self.accepted, "digest": self.digest,
                "error_type": self.error_type,
                "seconds": round(self.seconds, 6)}

    def __repr__(self):
        verdict = {True: "accept", False: "reject", None: "?"}[self.accepted]
        return "BackendResult(%s=%s%s)" % (
            self.name, verdict, " %s" % self.digest if self.digest else "")


class Disagreement:
    """A policy violation: grammar + seed + sentence + per-backend views."""

    __slots__ = ("grammar", "seed", "index", "kind", "token_names",
                 "mutations", "backends", "minimized")

    def __init__(self, grammar: str, seed: int, index: int, kind: str,
                 token_names: Tuple[str, ...], mutations: Tuple[str, ...],
                 backends: Dict[str, BackendResult],
                 minimized: Optional[Tuple[str, ...]] = None):
        self.grammar = grammar
        self.seed = seed
        self.index = index
        self.kind = kind
        self.token_names = tuple(token_names)
        self.mutations = tuple(mutations)
        self.backends = backends
        self.minimized = minimized

    def to_dict(self) -> dict:
        return {
            "grammar": self.grammar,
            "seed": self.seed,
            "index": self.index,
            "kind": self.kind,
            "tokens": list(self.token_names),
            "mutations": list(self.mutations),
            "backends": {n: r.to_dict() for n, r in
                         sorted(self.backends.items())},
            "minimized": list(self.minimized) if self.minimized else None,
        }

    def summary(self) -> str:
        views = ", ".join(
            "%s=%s" % (n, {True: "accept", False: "reject", None: "?"}
                       [r.accepted] + (":" + r.digest if r.digest else ""))
            for n, r in sorted(self.backends.items()))
        lines = ["%s disagreement on %s (seed=%d, sentence #%d, %d tokens)"
                 % (self.kind, self.grammar, self.seed, self.index,
                    len(self.token_names)),
                 "  tokens: %s" % " ".join(self.token_names),
                 "  backends: %s" % views]
        if self.mutations:
            lines.append("  mutations: %s" % " ".join(self.mutations))
        if self.minimized is not None:
            lines.append("  minimized (%d tokens): %s"
                         % (len(self.minimized), " ".join(self.minimized)))
        return "\n".join(lines)


class DifferentialReport:
    """Aggregated outcome of one corpus run against one grammar."""

    def __init__(self, grammar: str, seed: int, n: int):
        self.grammar = grammar
        self.seed = seed
        self.n = n
        self.corpus_size = 0
        self.mutated_count = 0
        self.tokens_total = 0
        self.backend_stats: Dict[str, Dict[str, float]] = {}
        self.stats: Dict[str, int] = {}
        self.disagreements: List[Disagreement] = []
        self.skipped: Dict[str, str] = {}
        self.batch: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def bump(self, key: str, by: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + by

    def note_result(self, result: BackendResult) -> None:
        s = self.backend_stats.setdefault(result.name, {
            "accepted": 0, "rejected": 0, "indeterminate": 0, "seconds": 0.0})
        if result.accepted is True:
            s["accepted"] += 1
        elif result.accepted is False:
            s["rejected"] += 1
        else:
            s["indeterminate"] += 1
        s["seconds"] += result.seconds

    def to_json(self) -> dict:
        return {
            "grammar": self.grammar,
            "seed": self.seed,
            "n": self.n,
            "corpus_size": self.corpus_size,
            "mutated": self.mutated_count,
            "tokens_total": self.tokens_total,
            "ok": self.ok,
            "backends": {n: dict(s, seconds=round(s["seconds"], 6))
                         for n, s in sorted(self.backend_stats.items())},
            "skipped": dict(self.skipped),
            "stats": dict(self.stats),
            "batch": self.batch,
            "disagreements": [d.to_dict() for d in self.disagreements],
        }

    def summary(self) -> str:
        lines = ["%s: %d sentences (%d mutated, %d tokens), %d disagreement(s)"
                 % (self.grammar, self.corpus_size, self.mutated_count,
                    self.tokens_total, len(self.disagreements))]
        for name, s in sorted(self.backend_stats.items()):
            lines.append("  %-12s accept=%d reject=%d indeterminate=%d (%.3fs)"
                         % (name, s["accepted"], s["rejected"],
                            s["indeterminate"], s["seconds"]))
        for name, reason in sorted(self.skipped.items()):
            lines.append("  %-12s skipped: %s" % (name, reason))
        if self.stats:
            lines.append("  stats: " + ", ".join(
                "%s=%d" % kv for kv in sorted(self.stats.items())))
        if self.batch is not None:
            lines.append("  batch cross-check: %d inputs, %d mismatch(es)"
                         % (self.batch["checked"], self.batch["mismatches"]))
        for d in self.disagreements:
            lines.append(d.summary())
        return "\n".join(lines)


class DifferentialRunner:
    """Compiles a grammar once and fans sentences through every backend."""

    def __init__(self, grammar_text: str, name: Optional[str] = None,
                 backends: Optional[Sequence[str]] = None,
                 deadline: float = 20.0, max_k: int = 6):
        self.grammar_text = grammar_text
        self.host = compile_grammar(grammar_text, name=name)
        self.grammar_name = self.host.grammar.name
        self.deadline = deadline
        self.skipped: Dict[str, str] = {}
        requested = tuple(backends) if backends else ALL_BACKENDS
        unknown = [b for b in requested if b not in ALL_BACKENDS]
        if unknown:
            raise ValueError("unknown backend(s) %s; choose from %s"
                             % (", ".join(unknown), ", ".join(ALL_BACKENDS)))
        self._parsers: Dict[str, object] = {}
        for b in requested:
            try:
                self._parsers[b] = self._build_backend(b, max_k)
            except (GrammarError, LLStarError) as exc:
                self.skipped[b] = str(exc)
        self.backends = tuple(self._parsers)

    # -- backend construction ----------------------------------------------

    def _build_backend(self, name: str, max_k: int):
        if name in ("interp", "interp-graph"):
            return None  # the host itself; options built per parse
        if name == "codegen":
            source = generate_python(self.host.analysis)
            namespace: Dict[str, object] = {}
            exec(compile(source, "<fuzz-generated>", "exec"), namespace)
            return [v for v in namespace.values()
                    if isinstance(v, type) and issubclass(v, GeneratedParser)
                    and v is not GeneratedParser][0]
        if name == "llk":
            return LLkParser(self.host.analysis, max_k=max_k)
        if name == "packrat":
            return PackratParser(self.host.grammar)
        if name == "glr":
            return GLRParser(self.host.grammar)
        if name == "earley":
            return EarleyParser(self.host.grammar)
        raise ValueError(name)

    # -- per-sentence execution --------------------------------------------

    def run_sentence(self, token_names: Sequence[str]
                     ) -> Dict[str, BackendResult]:
        results = {}
        for name in self.backends:
            results[name] = self._run_one(name, token_names)
        return results

    def run_backend(self, name: str, token_names: Sequence[str]
                    ) -> BackendResult:
        """Parse one sentence with one backend (leaderboard primitive)."""
        if name not in self._parsers:
            raise ValueError("backend %s unavailable (%s)"
                             % (name, self.skipped.get(name, "not requested")))
        return self._run_one(name, token_names)

    def _run_one(self, name: str, token_names: Sequence[str]) -> BackendResult:
        kind = _KIND[name]
        start = time.perf_counter()
        accepted: Optional[bool] = None
        digest = None
        error_type = None
        try:
            stream = self.host.token_stream_from_types(token_names)
            if name in ("interp", "interp-graph"):
                options = ParserOptions(
                    use_tables=(name == "interp"),
                    budget=ParserBudget.defensive(
                        deadline_seconds=self.deadline))
                tree = self.host.parse(stream, options=options)
                accepted, digest = True, tree_digest(tree)
            elif name == "codegen":
                tree = self._parsers[name](stream).parse()
                accepted, digest = True, tree_digest(tree)
            elif name == "llk":
                tree = self._parsers[name].parse(stream)
                accepted, digest = True, tree_digest(tree)
            elif name in ("packrat", "glr", "earley"):
                # The baselines build through the same unified
                # TreeBuilder, so they digest too: their spanned trees
                # are compared against the interpreter's as a soft
                # statistic (ambiguity legitimately picks different
                # derivations), not a hard disagreement.
                tree = self._parsers[name].parse(stream)
                accepted, digest = True, tree_digest(tree)
        except BudgetExceededError as exc:
            accepted, error_type = None, type(exc).__name__
        except RecognitionError as exc:
            accepted, error_type = False, type(exc).__name__
        except GrammarError as exc:
            accepted, error_type = None, type(exc).__name__
        return BackendResult(name, kind, accepted, digest, error_type,
                             time.perf_counter() - start)

    # -- comparison policy --------------------------------------------------

    def judge(self, results: Dict[str, BackendResult]
              ) -> Tuple[List[str], List[str]]:
        """(disagreement kinds, statistic keys) for one result set."""
        kinds: List[str] = []
        stats: List[str] = []
        tree = [r for r in results.values()
                if r.kind == TREE and r.accepted is not None]
        verdicts = {r.accepted for r in tree}
        if len(verdicts) > 1:
            kinds.append("tree-accept")
        elif verdicts == {True} and len({r.digest for r in tree}) > 1:
            kinds.append("tree-digest")
        glr, earley = results.get("glr"), results.get("earley")
        if (glr is not None and earley is not None
                and glr.accepted is not None and earley.accepted is not None
                and glr.accepted != earley.accepted):
            kinds.append("cfg-accept")
        if earley is not None and earley.accepted is False:
            accepting = [r.name for r in results.values()
                         if r.kind in (TREE, PEG) and r.accepted]
            if accepting:
                kinds.append("unsound")
        interp = results.get("interp")
        packrat = results.get("packrat")
        if (interp is not None and packrat is not None
                and interp.accepted is True and packrat.accepted is False):
            stats.append("peg_divergence")
        if interp is not None and interp.digest is not None:
            # Soft span-agreement statistic for the non-LL tree
            # producers: a different digest means a different (equally
            # valid) derivation, worth counting but not a bug.
            for other in (packrat, glr, earley):
                if (other is not None and other.digest is not None
                        and other.digest != interp.digest):
                    stats.append("%s_tree_divergence" % other.name)
        return kinds, stats

    # -- minimization -------------------------------------------------------

    def minimize(self, token_names: Sequence[str], kinds: Sequence[str],
                 max_evals: int = 200) -> Tuple[str, ...]:
        """Greedy ddmin-style token deletion preserving the failure kind."""
        target = set(kinds)

        def still_fails(candidate: Tuple[str, ...]) -> bool:
            found, _ = self.judge(self.run_sentence(candidate))
            return bool(target & set(found))

        names = list(token_names)
        evals = 0
        chunk = max(1, len(names) // 2)
        while chunk >= 1:
            i = 0
            while i < len(names):
                candidate = names[:i] + names[i + chunk:]
                evals += 1
                if evals > max_evals:
                    return tuple(names)
                if candidate != names and still_fails(tuple(candidate)):
                    names = candidate
                else:
                    i += chunk
            chunk //= 2
        return tuple(names)

    # -- corpus driver ------------------------------------------------------

    def run_corpus(self, n: int = 100, seed: int = 42, max_depth: int = 20,
                   max_tokens: int = 160, mutate: float = 0.0,
                   minimize: bool = True, batch: bool = True,
                   jobs: int = 0, max_reports: int = 5
                   ) -> DifferentialReport:
        report = DifferentialReport(self.grammar_name, seed, n)
        report.skipped = dict(self.skipped)
        generator = SentenceGenerator(self.host, seed=seed,
                                      max_depth=max_depth,
                                      max_tokens=max_tokens)
        corpus: List[Sentence] = generator.generate(n)
        if mutate > 0.0:
            extra = max(1, int(round(n * mutate)))
            corpus.extend(generator.mutate(s) for s in corpus[:extra])
        report.corpus_size = len(corpus)
        report.mutated_count = sum(1 for s in corpus if s.mutated)
        interp_verdicts: List[Optional[bool]] = []
        for sentence in corpus:
            report.tokens_total += sentence.size
            results = self.run_sentence(sentence.token_names)
            for r in results.values():
                report.note_result(r)
            kinds, stats = self.judge(results)
            for key in stats:
                report.bump(key)
            interp = results.get("interp")
            interp_verdicts.append(interp.accepted if interp is not None
                                   else None)
            if (not sentence.mutated and interp is not None
                    and interp.accepted is False):
                report.bump("ll_rejected")
            for kind in kinds:
                minimized = None
                if minimize and len(report.disagreements) < max_reports:
                    minimized = self.minimize(sentence.token_names, [kind])
                report.disagreements.append(Disagreement(
                    self.grammar_name, seed, sentence.index, kind,
                    sentence.token_names, sentence.mutations, results,
                    minimized=minimized))
        if sum(1 for s in corpus if s.text is not None):
            report.bump("rendered_texts",
                        sum(1 for s in corpus if s.text is not None))
        if batch and "interp" in self.backends:
            self._batch_cross_check(corpus, interp_verdicts, report, jobs)
        return report

    def _batch_cross_check(self, corpus: List[Sentence],
                           interp_verdicts: List[Optional[bool]],
                           report: DifferentialReport, jobs: int) -> None:
        """The batch pipeline must agree with the in-process interpreter
        on every sentence that renders to source text."""
        from repro.batch import BatchEngine

        renderable = [(i, s) for i, s in enumerate(corpus)
                      if s.text is not None and interp_verdicts[i] is not None]
        if not renderable:
            report.batch = {"checked": 0, "mismatches": 0}
            return
        engine = BatchEngine(self.grammar_text, name=self.grammar_name,
                             jobs=jobs)
        batch_report = engine.run([("s%d" % i, s.text)
                                   for i, s in renderable])
        mismatches = 0
        by_id = {r.input_id: r for r in batch_report.results}
        for i, sentence in renderable:
            result = by_id.get("s%d" % i)
            if result is None or result.error_type == "BudgetExceededError":
                continue
            if bool(result.ok) != interp_verdicts[i]:
                mismatches += 1
                report.disagreements.append(Disagreement(
                    self.grammar_name, report.seed, sentence.index, "batch",
                    sentence.token_names, sentence.mutations,
                    {"batch": BackendResult("batch", TREE, bool(result.ok),
                                            error_type=result.error_type)}))
        report.batch = {"checked": len(renderable), "mismatches": mismatches}


def run_suite(grammar_names: Optional[Sequence[str]] = None,
              backends: Optional[Sequence[str]] = None,
              **corpus_kwargs) -> Dict[str, DifferentialReport]:
    """Run the differential corpus over the paper's benchmark grammars."""
    from repro.grammars import PAPER_ORDER, load

    reports = {}
    for name in grammar_names or PAPER_ORDER:
        bench = load(name)
        runner = DifferentialRunner(bench.grammar_text, name=name,
                                    backends=backends)
        reports[name] = runner.run_corpus(**corpus_kwargs)
    return reports
