"""Grammar-driven fuzzing and cross-backend differential testing.

* :mod:`repro.fuzz.generator` — seeded, coverage-guided sentence
  generation from any compiled grammar (token streams + rendered text,
  plus a mutation pass for recovery testing).
* :mod:`repro.fuzz.differential` — the harness that parses every
  generated sentence with every backend (interpreter, codegen, GLR,
  Earley, packrat, strict LL(k)) and reports structured, minimized
  :class:`~repro.fuzz.differential.Disagreement` records.

CLI entry point: ``llstar fuzz`` (see :mod:`repro.tools.cli`).
"""

from repro.fuzz.differential import (
    ALL_BACKENDS,
    BackendResult,
    DifferentialReport,
    DifferentialRunner,
    Disagreement,
    run_suite,
    tree_digest,
)
from repro.fuzz.generator import Sentence, SentenceGenerator

__all__ = [
    "ALL_BACKENDS",
    "BackendResult",
    "DifferentialReport",
    "DifferentialRunner",
    "Disagreement",
    "Sentence",
    "SentenceGenerator",
    "run_suite",
    "tree_digest",
]
