"""Sets of integers stored as sorted disjoint closed intervals.

Character classes (``[a-zA-Z_]``) and token sets compress naturally into
interval sets; the lexer DFA keys its transitions on them.  Intervals are
closed on both ends: ``(97, 122)`` is ``a..z``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple


class IntervalSet:
    """Immutable-ish sorted set of closed integer intervals.

    Mutating operations (:meth:`add_range`) are only used while building;
    all algebra (union/intersection/complement) returns new sets.
    """

    __slots__ = ("_ivals",)

    def __init__(self, intervals: Iterable[Tuple[int, int]] = ()):
        self._ivals: List[Tuple[int, int]] = []
        for lo, hi in intervals:
            self.add_range(lo, hi)

    # -- construction ------------------------------------------------------

    @classmethod
    def of(cls, *values: int) -> "IntervalSet":
        s = cls()
        for v in values:
            s.add_range(v, v)
        return s

    @classmethod
    def of_chars(cls, chars: str) -> "IntervalSet":
        s = cls()
        for ch in chars:
            o = ord(ch)
            s.add_range(o, o)
        return s

    @classmethod
    def char_range(cls, lo: str, hi: str) -> "IntervalSet":
        return cls([(ord(lo), ord(hi))])

    def add_range(self, lo: int, hi: int) -> None:
        """Insert [lo, hi], merging with touching/overlapping intervals."""
        if hi < lo:
            raise ValueError("empty interval [%d,%d]" % (lo, hi))
        out: List[Tuple[int, int]] = []
        placed = False
        for a, b in self._ivals:
            if b + 1 < lo:  # strictly left, no touch
                out.append((a, b))
            elif hi + 1 < a:  # strictly right
                if not placed:
                    out.append((lo, hi))
                    placed = True
                out.append((a, b))
            else:  # overlap or adjacency: merge
                lo = min(lo, a)
                hi = max(hi, b)
        if not placed:
            out.append((lo, hi))
        self._ivals = out

    def add(self, value: int) -> None:
        self.add_range(value, value)

    # -- queries -----------------------------------------------------------

    def __contains__(self, value: int) -> bool:
        lo, hi = 0, len(self._ivals)
        while lo < hi:
            mid = (lo + hi) // 2
            a, b = self._ivals[mid]
            if value < a:
                hi = mid
            elif value > b:
                lo = mid + 1
            else:
                return True
        return False

    def contains_char(self, ch: str) -> bool:
        return bool(ch) and ord(ch) in self

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __len__(self) -> int:
        return sum(b - a + 1 for a, b in self._ivals)

    def __iter__(self) -> Iterator[int]:
        for a, b in self._ivals:
            yield from range(a, b + 1)

    def intervals(self) -> List[Tuple[int, int]]:
        return list(self._ivals)

    def min(self) -> int:
        return self._ivals[0][0]

    def max(self) -> int:
        return self._ivals[-1][1]

    # -- algebra -----------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        out = IntervalSet(self._ivals)
        for a, b in other._ivals:
            out.add_range(a, b)
        return out

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        out = IntervalSet()
        i = j = 0
        a, b = self._ivals, other._ivals
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.add_range(lo, hi)
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return out

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersection(other.complement(self.min(), self.max())) if self else IntervalSet()

    def complement(self, universe_lo: int, universe_hi: int) -> "IntervalSet":
        """Everything in [universe_lo, universe_hi] not in this set."""
        out = IntervalSet()
        cur = universe_lo
        for a, b in self._ivals:
            if a > universe_hi:
                break
            if cur < a:
                out.add_range(cur, min(a - 1, universe_hi))
            cur = max(cur, b + 1)
        if cur <= universe_hi:
            out.add_range(cur, universe_hi)
        return out

    def overlaps(self, other: "IntervalSet") -> bool:
        return bool(self.intersection(other))

    # -- misc ----------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivals == other._ivals

    def __hash__(self):
        return hash(tuple(self._ivals))

    def __repr__(self):
        def show(v):
            if 32 <= v < 127:
                return repr(chr(v))
            return str(v)

        parts = []
        for a, b in self._ivals:
            parts.append(show(a) if a == b else "%s-%s" % (show(a), show(b)))
        return "IntervalSet{%s}" % ", ".join(parts)
