"""Small shared utilities (interval sets, ordered sets, DOT escaping)."""

from repro.util.intervals import IntervalSet
from repro.util.orderedset import OrderedSet

__all__ = ["IntervalSet", "OrderedSet"]
