"""Insertion-ordered set.

Python dicts preserve insertion order, so an ordered set is a thin
wrapper; the analysis uses it for deterministic iteration over ATN
configuration sets (determinism matters: DFA state numbering and
therefore all goldens depend on it).
"""

from __future__ import annotations

from typing import Iterable, Iterator, TypeVar, Generic

T = TypeVar("T")


class OrderedSet(Generic[T]):
    __slots__ = ("_d",)

    def __init__(self, items: Iterable[T] = ()):
        self._d = dict.fromkeys(items)

    def add(self, item: T) -> bool:
        """Add; return True if the item was new."""
        if item in self._d:
            return False
        self._d[item] = None
        return True

    def update(self, items: Iterable[T]) -> None:
        for it in items:
            self._d.setdefault(it)

    def discard(self, item: T) -> None:
        self._d.pop(item, None)

    def __contains__(self, item: T) -> bool:
        return item in self._d

    def __iter__(self) -> Iterator[T]:
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def __bool__(self) -> bool:
        return bool(self._d)

    def __eq__(self, other):
        if isinstance(other, OrderedSet):
            return set(self._d) == set(other._d)
        if isinstance(other, (set, frozenset)):
            return set(self._d) == other
        return NotImplemented

    def __hash__(self):
        # Order-insensitive hash so equal sets hash equal.
        return hash(frozenset(self._d))

    def __repr__(self):
        return "OrderedSet(%r)" % list(self._d)
