"""Maximal-munch DFA tokenizer.

Longest match wins; ties break by rule priority (implicit literals
first, then lexer-rule definition order).  ``-> skip`` drops the token;
``-> channel(HIDDEN)`` / ``-> hidden`` routes it off the parser channel.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterator, Optional

from repro.exceptions import LexerError
from repro.lexgen.dfa import LexerDFA
from repro.runtime.char_stream import CharStream
from repro.runtime.token import DEFAULT_CHANNEL, HIDDEN_CHANNEL, Token, Vocabulary
from repro.tables.lexer import LexerTable, compile_lexer_table


class LexerSpec:
    """Compiled lexer: DFA plus the vocabulary mapping rule names to types.

    The tokenizer executes the flat :class:`~repro.tables.lexer.LexerTable`
    form; a cache warm start passes the deserialized ``table`` directly so
    nothing is recompiled.
    """

    def __init__(self, dfa: LexerDFA, vocabulary: Vocabulary,
                 table: Optional[LexerTable] = None):
        self.dfa = dfa
        self.vocabulary = vocabulary
        self._table = table
        # Token type per accepts-pool index, resolved on first use (the
        # vocabulary lookup involves string dispatch; once per rule, not
        # once per token).
        self._accept_types: Dict[int, int] = {}

    @property
    def table(self) -> LexerTable:
        if self._table is None:
            self._table = compile_lexer_table(self.dfa)
        return self._table

    def _accept_type(self, accept_index: int) -> int:
        t = self._accept_types.get(accept_index)
        if t is None:
            t = self.token_type_for(self.table.accepts[accept_index][1])
            self._accept_types[accept_index] = t
        return t

    def tokenizer(self, text: str, name: str = "<input>") -> "DFATokenizer":
        return DFATokenizer(self, CharStream(text, name))

    def tokenize(self, text: str, include_hidden: bool = False):
        """All tokens for ``text`` (skipped rules never appear)."""
        tokens = list(self.tokenizer(text))
        if include_hidden:
            return tokens
        return [t for t in tokens if t.channel == DEFAULT_CHANNEL]

    def token_type_for(self, accept_name: str) -> int:
        """Map an accept-rule display name to its token type."""
        if accept_name.startswith("'"):
            t = self.vocabulary.type_of_literal(accept_name[1:-1])
        else:
            t = self.vocabulary.type_of(accept_name)
        if t is None:
            raise LexerError(accept_name, 0, 0, 0)
        return t


class DFATokenizer:
    """Iterator of Tokens over a char stream, driven by the lexer DFA."""

    def __init__(self, spec: LexerSpec, stream: CharStream):
        self.spec = spec
        self.stream = stream
        self._emitted_eof = False

    def __iter__(self) -> Iterator[Token]:
        return self

    def __next__(self) -> Token:
        if self._emitted_eof:
            raise StopIteration
        token = self.next_token()
        while token is None:  # skipped rule: keep scanning
            token = self.next_token()
        if token.type == -1:
            self._emitted_eof = True
        return token

    def next_token(self) -> Optional[Token]:
        """Scan one token; None for skipped rules; EOF token at end.

        The maximal-munch loop walks the flat lexer table: one
        ``bisect_right`` probe over the state's sorted interval row per
        character, all array indexing, no per-character allocation.
        """
        stream = self.stream
        if stream.at_eof:
            line, col = stream.line_column()
            return Token.eof(line=line, column=col, start=stream.index)

        spec = self.spec
        table = spec.table
        edge_index = table.edge_index
        edge_lo = table.edge_lo
        edge_hi = table.edge_hi
        edge_targets = table.edge_targets
        accept_idx = table.accept_idx
        start_index = stream.index
        state = table.start
        last_end = -1
        last_accept = -1  # index into the accepts pool
        index = start_index
        text = stream.text
        n = len(text)
        while index < n:
            cp = ord(text[index])
            lo = edge_index[state]
            i = bisect_right(edge_lo, cp, lo, edge_index[state + 1]) - 1
            if i < lo or cp > edge_hi[i]:
                break
            state = edge_targets[i]
            index += 1
            ai = accept_idx[state]
            if ai >= 0:
                last_end = index
                last_accept = ai

        if last_accept < 0:
            line, col = stream.line_column(start_index)
            raise LexerError(text[start_index], line, col, start_index)

        commands = table.accepts[last_accept][2]
        end_index = last_end
        stream.seek(end_index)
        if "skip" in commands:
            return None
        channel = DEFAULT_CHANNEL
        for cmd in commands:
            if cmd == "hidden" or cmd == "channel(HIDDEN)":
                channel = HIDDEN_CHANNEL
        line, col = stream.line_column(start_index)
        return Token(
            spec._accept_type(last_accept),
            text[start_index:end_index],
            line=line,
            column=col,
            channel=channel,
            start=start_index,
            stop=end_index,
        )
