"""Maximal-munch DFA tokenizer.

Longest match wins; ties break by rule priority (implicit literals
first, then lexer-rule definition order).  ``-> skip`` drops the token;
``-> channel(HIDDEN)`` / ``-> hidden`` routes it off the parser channel.

The scan loop is alphabet-compressed for ASCII (the dominant case in
real corpora): :meth:`~repro.tables.lexer.LexerTable.ascii_index` maps a
codepoint to its equivalence class and the state's dense class row to
the target, two array indexes per character.  Codepoints >= 128 fall
back to the interval bisect, and ``use_char_classes=False`` forces the
bisect walk everywhere (the reference path the fast path is checked
against in ``tests/test_lexer_fastpath.py``).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, Optional, Tuple

from repro.exceptions import LexerError
from repro.lexgen.dfa import LexerDFA
from repro.runtime.char_stream import CharStream
from repro.runtime.token import DEFAULT_CHANNEL, HIDDEN_CHANNEL, Token, Vocabulary
from repro.tables.lexer import ASCII_LIMIT, LexerTable, compile_lexer_table

#: Channel slot in the accept dispatch marking a ``-> skip`` rule.
_SKIP_CHANNEL = -1


class LexerSpec:
    """Compiled lexer: DFA plus the vocabulary mapping rule names to types.

    The tokenizer executes the flat :class:`~repro.tables.lexer.LexerTable`
    form; a cache warm start passes the deserialized ``table`` directly so
    nothing is recompiled.
    """

    def __init__(self, dfa: Optional[LexerDFA], vocabulary: Vocabulary,
                 table: Optional[LexerTable] = None):
        if dfa is None and table is None:
            raise ValueError("LexerSpec needs a DFA or a compiled table")
        self._dfa = dfa
        self.vocabulary = vocabulary
        self._table = table
        # (token type, channel) per accepts-pool index; channel -1 means
        # the rule is skipped.  Resolved once per spec, so the hot loop
        # does one tuple index per token instead of a method call, a dict
        # probe, and a commands scan.
        self._dispatch: Optional[Tuple[Tuple[int, int], ...]] = None

    @property
    def dfa(self) -> LexerDFA:
        """Object-model DFA for diagnostics/tools; warm starts carry only
        the flat table, so this rebuilds lazily and never runs on the
        tokenize path."""
        if self._dfa is None:
            self._dfa = self._table.to_lexer_dfa()
        return self._dfa

    @dfa.setter
    def dfa(self, dfa: LexerDFA) -> None:
        self._dfa = dfa
        self._table = None  # stale: recompile from the new DFA on demand
        self._dispatch = None

    @property
    def table(self) -> LexerTable:
        if self._table is None:
            self._table = compile_lexer_table(self._dfa)
        return self._table

    @property
    def accept_dispatch(self) -> Tuple[Tuple[int, int], ...]:
        """``(token_type, channel)`` per accept-pool index (channel -1 for
        ``-> skip``), aligned with ``table.accepts``."""
        dispatch = self._dispatch
        if dispatch is None:
            entries = []
            for _, name, commands in self.table.accepts:
                channel = DEFAULT_CHANNEL
                for cmd in commands:
                    if cmd == "skip":
                        channel = _SKIP_CHANNEL
                        break
                    if cmd == "hidden" or cmd == "channel(HIDDEN)":
                        channel = HIDDEN_CHANNEL
                entries.append((self.token_type_for(name), channel))
            dispatch = self._dispatch = tuple(entries)
        return dispatch

    def tokenizer(self, text: str, name: str = "<input>",
                  use_char_classes: bool = True) -> "DFATokenizer":
        return DFATokenizer(self, CharStream(text, name),
                            use_char_classes=use_char_classes)

    def tokenize(self, text: str, include_hidden: bool = False):
        """All tokens for ``text`` (skipped rules never appear)."""
        tokens = list(self.tokenizer(text))
        if include_hidden:
            return tokens
        return [t for t in tokens if t.channel == DEFAULT_CHANNEL]

    def token_type_for(self, accept_name: str) -> int:
        """Map an accept-rule display name to its token type."""
        if accept_name.startswith("'"):
            t = self.vocabulary.type_of_literal(accept_name[1:-1])
        else:
            t = self.vocabulary.type_of(accept_name)
        if t is None:
            raise LexerError(accept_name, 0, 0, 0)
        return t


class DFATokenizer:
    """Iterator of Tokens over a char stream, driven by the lexer DFA."""

    def __init__(self, spec: LexerSpec, stream: CharStream,
                 use_char_classes: bool = True):
        self.spec = spec
        self.stream = stream
        self.use_char_classes = use_char_classes
        self._emitted_eof = False
        # Exclusive char offset one past the furthest character the most
        # recent next_token() scan *examined* (not just consumed):
        # maximal munch reads one char beyond the accepted lexeme before
        # it can stop.  The incremental relexer uses this to decide which
        # old lexemes an edit can possibly have changed.
        self.last_scan_end = 0

    def __iter__(self) -> Iterator[Token]:
        return self

    def __next__(self) -> Token:
        if self._emitted_eof:
            raise StopIteration
        token = self.next_token()
        while token is None:  # skipped rule: keep scanning
            token = self.next_token()
        if token.type == -1:
            self._emitted_eof = True
        return token

    def next_token(self) -> Optional[Token]:
        """Scan one token; None for skipped rules; EOF token at end.

        The maximal-munch loop walks the flat lexer table: for ASCII,
        two array indexes per character (equivalence class, then the
        state's dense class row); otherwise one ``bisect_right`` probe
        over the state's sorted interval row.  All array indexing, no
        per-character allocation.
        """
        stream = self.stream
        if stream.at_eof:
            self.last_scan_end = stream.index + 1  # "examined" end-of-input
            line, col = stream.line_column()
            return Token.eof(line=line, column=col, start=stream.index)

        spec = self.spec
        table = spec.table
        edge_index = table.edge_index
        edge_lo = table.edge_lo
        edge_hi = table.edge_hi
        edge_targets = table.edge_targets
        accept_idx = table.accept_idx
        start_index = stream.index
        state = table.start
        last_end = -1
        last_accept = -1  # index into the accepts pool
        index = start_index
        text = stream.text
        n = len(text)
        if self.use_char_classes:
            class_of, class_rows = table.ascii_index()
            while index < n:
                cp = ord(text[index])
                if cp < ASCII_LIMIT:
                    target = class_rows[state][class_of[cp]]
                    if target < 0:
                        break
                else:
                    lo = edge_index[state]
                    i = bisect_right(edge_lo, cp, lo, edge_index[state + 1]) - 1
                    if i < lo or cp > edge_hi[i]:
                        break
                    target = edge_targets[i]
                state = target
                index += 1
                ai = accept_idx[state]
                if ai >= 0:
                    last_end = index
                    last_accept = ai
        else:
            while index < n:
                cp = ord(text[index])
                lo = edge_index[state]
                i = bisect_right(edge_lo, cp, lo, edge_index[state + 1]) - 1
                if i < lo or cp > edge_hi[i]:
                    break
                state = edge_targets[i]
                index += 1
                ai = accept_idx[state]
                if ai >= 0:
                    last_end = index
                    last_accept = ai

        # ``index`` stopped either on the first character with no DFA
        # edge (examined, not consumed) or at end of input (the scan
        # examined the EOF boundary); either way the scan looked at
        # everything strictly before index + 1.
        self.last_scan_end = index + 1

        if last_accept < 0:
            line, col = stream.line_column(start_index)
            raise LexerError(text[start_index], line, col, start_index)

        token_type, channel = spec.accept_dispatch[last_accept]
        end_index = last_end
        stream.seek(end_index)
        if channel == _SKIP_CHANNEL:
            return None
        line, col = stream.line_column(start_index)
        return Token(
            token_type,
            text[start_index:end_index],
            line=line,
            column=col,
            channel=channel,
            start=start_index,
            stop=end_index,
        )
