"""Maximal-munch DFA tokenizer.

Longest match wins; ties break by rule priority (implicit literals
first, then lexer-rule definition order).  ``-> skip`` drops the token;
``-> channel(HIDDEN)`` / ``-> hidden`` routes it off the parser channel.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.exceptions import LexerError
from repro.lexgen.dfa import LexerDFA
from repro.runtime.char_stream import CharStream
from repro.runtime.token import DEFAULT_CHANNEL, HIDDEN_CHANNEL, Token, Vocabulary


class LexerSpec:
    """Compiled lexer: DFA plus the vocabulary mapping rule names to types."""

    def __init__(self, dfa: LexerDFA, vocabulary: Vocabulary):
        self.dfa = dfa
        self.vocabulary = vocabulary

    def tokenizer(self, text: str, name: str = "<input>") -> "DFATokenizer":
        return DFATokenizer(self, CharStream(text, name))

    def tokenize(self, text: str, include_hidden: bool = False):
        """All tokens for ``text`` (skipped rules never appear)."""
        tokens = list(self.tokenizer(text))
        if include_hidden:
            return tokens
        return [t for t in tokens if t.channel == DEFAULT_CHANNEL]

    def token_type_for(self, accept_name: str) -> int:
        """Map an accept-rule display name to its token type."""
        if accept_name.startswith("'"):
            t = self.vocabulary.type_of_literal(accept_name[1:-1])
        else:
            t = self.vocabulary.type_of(accept_name)
        if t is None:
            raise LexerError(accept_name, 0, 0, 0)
        return t


class DFATokenizer:
    """Iterator of Tokens over a char stream, driven by the lexer DFA."""

    def __init__(self, spec: LexerSpec, stream: CharStream):
        self.spec = spec
        self.stream = stream
        self._emitted_eof = False

    def __iter__(self) -> Iterator[Token]:
        return self

    def __next__(self) -> Token:
        if self._emitted_eof:
            raise StopIteration
        token = self.next_token()
        while token is None:  # skipped rule: keep scanning
            token = self.next_token()
        if token.type == -1:
            self._emitted_eof = True
        return token

    def next_token(self) -> Optional[Token]:
        """Scan one token; None for skipped rules; EOF token at end."""
        stream = self.stream
        if stream.at_eof:
            line, col = stream.line_column()
            return Token.eof(line=line, column=col, start=stream.index)

        dfa = self.spec.dfa
        start_index = stream.index
        state_id = dfa.start_id
        last_accept = None  # (end_index, accept_rule)
        index = start_index
        text = stream.text
        n = len(text)
        while index < n:
            state_id = dfa.state(state_id).next_state(ord(text[index]))
            if state_id < 0:
                break
            index += 1
            accept = dfa.state(state_id).accept
            if accept is not None:
                last_accept = (index, accept)

        if last_accept is None:
            line, col = stream.line_column(start_index)
            raise LexerError(text[start_index], line, col, start_index)

        end_index, (priority, name, commands) = last_accept
        stream.seek(end_index)
        if "skip" in commands:
            return None
        channel = DEFAULT_CHANNEL
        for cmd in commands:
            if cmd == "hidden" or cmd == "channel(HIDDEN)":
                channel = HIDDEN_CHANNEL
        line, col = stream.line_column(start_index)
        return Token(
            self.spec.token_type_for(name),
            text[start_index:end_index],
            line=line,
            column=col,
            channel=channel,
            start=start_index,
            stop=end_index,
        )
