"""Subset construction over character intervals for the lexer DFA.

Edges are keyed by disjoint character intervals rather than single
characters so the DFA stays tiny even with full-Unicode complements.
Runtime lookup is a binary search over each state's sorted interval
edges, using the same sorted-range encoding (parallel ``los`` / ``his``
/ ``targets`` int arrays + bisect) as the flat execution tables in
:mod:`repro.tables` — the previous encoding bisected a list of
``(lo, hi)`` tuples, allocating a probe tuple and comparing tuples on
every character.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lexgen.nfa import NFA, NFAState
from repro.tables.ranges import find_interval_index


class LexerDFAState:
    """DFA state: sorted disjoint interval edges + best accept rule.

    ``los``/``his``/``targets`` are parallel arrays: edge ``i`` matches
    codepoints in ``[los[i], his[i]]`` (inclusive) and goes to state id
    ``targets[i]``; ``los`` is sorted and intervals are disjoint.
    """

    __slots__ = ("id", "los", "his", "targets", "accept")

    def __init__(self, state_id: int):
        self.id = state_id
        self.los: List[int] = []
        self.his: List[int] = []
        self.targets: List[int] = []
        self.accept: Optional[Tuple[int, str, tuple]] = None

    @property
    def ivals(self) -> List[Tuple[int, int]]:
        """The interval list view ``[(lo, hi), ...]`` (diagnostics)."""
        return list(zip(self.los, self.his))

    def add_edge(self, lo: int, hi: int, target: int) -> None:
        """Append one interval edge (caller keeps them sorted/disjoint,
        or calls :meth:`sort_edges` once after building)."""
        self.los.append(lo)
        self.his.append(hi)
        self.targets.append(target)

    def sort_edges(self) -> None:
        order = sorted(range(len(self.los)), key=lambda k: self.los[k])
        self.los = [self.los[k] for k in order]
        self.his = [self.his[k] for k in order]
        self.targets = [self.targets[k] for k in order]

    def next_state(self, codepoint: int) -> int:
        """Target state id for a character, or -1 (stuck)."""
        i = find_interval_index(self.los, self.his, codepoint, 0, len(self.los))
        return self.targets[i] if i >= 0 else -1

    def to_dict(self) -> dict:
        """JSON-safe form (kept stable for the schema-v1 upgrade path)."""
        return {
            "ivals": [[lo, hi] for lo, hi in zip(self.los, self.his)],
            "targets": list(self.targets),
            "accept": ([self.accept[0], self.accept[1], list(self.accept[2])]
                       if self.accept is not None else None),
        }

    @classmethod
    def from_dict(cls, state_id: int, data: dict) -> "LexerDFAState":
        s = cls(state_id)
        s.los = [lo for lo, _hi in data["ivals"]]
        s.his = [hi for _lo, hi in data["ivals"]]
        s.targets = list(data["targets"])
        if data["accept"] is not None:
            priority, name, commands = data["accept"]
            s.accept = (priority, name, tuple(commands))
        return s

    def __repr__(self):
        acc = "!" + self.accept[1] if self.accept else ""
        return "L%d%s" % (self.id, acc)


class LexerDFA:
    def __init__(self):
        self.states: List[LexerDFAState] = []
        self.start_id = 0

    def state(self, i: int) -> LexerDFAState:
        return self.states[i]

    def to_dict(self) -> dict:
        """Deterministic JSON-safe form (states in id order)."""
        return {
            "start_id": self.start_id,
            "states": [s.to_dict() for s in self.states],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LexerDFA":
        dfa = cls()
        dfa.start_id = data["start_id"]
        dfa.states = [LexerDFAState.from_dict(i, sd)
                      for i, sd in enumerate(data["states"])]
        return dfa

    def __repr__(self):
        return "LexerDFA(%d states)" % len(self.states)


def build_lexer_dfa(nfa: NFA) -> LexerDFA:
    """Classic subset construction, with the alphabet partitioned per
    state set by the boundary points of its outgoing interval labels."""
    dfa = LexerDFA()
    by_ids = {s.id: s for s in nfa.states}
    start_set = nfa.epsilon_closure([nfa.start])
    state_map: Dict[frozenset, int] = {}

    def get_state(id_set: frozenset) -> int:
        existing = state_map.get(id_set)
        if existing is not None:
            return existing
        ds = LexerDFAState(len(dfa.states))
        dfa.states.append(ds)
        state_map[id_set] = ds.id
        best = None
        for sid in id_set:
            acc = by_ids[sid].accept_rule
            if acc is not None and (best is None or acc[0] < best[0]):
                best = acc
        ds.accept = best
        return ds.id

    work = [start_set]
    get_state(start_set)
    done = set()
    while work:
        id_set = work.pop()
        if id_set in done:
            continue
        done.add(id_set)
        ds = dfa.states[state_map[id_set]]

        # Partition the alphabet at every interval boundary of this set.
        points = set()
        labelled: List[Tuple[int, int, NFAState]] = []
        for sid in id_set:
            for label, target in by_ids[sid].edges:
                if label is None:
                    continue
                for lo, hi in label.intervals():
                    points.add(lo)
                    points.add(hi + 1)
                    labelled.append((lo, hi, target))
        boundaries = sorted(points)
        edges: List[Tuple[Tuple[int, int], frozenset]] = []
        for i in range(len(boundaries) - 1):
            seg_lo, seg_hi = boundaries[i], boundaries[i + 1] - 1
            targets = [t for lo, hi, t in labelled if lo <= seg_lo and seg_hi <= hi]
            if not targets:
                continue
            closure = nfa.epsilon_closure(targets)
            edges.append(((seg_lo, seg_hi), closure))

        # Merge adjacent segments with identical targets, emit edges.
        merged: List[Tuple[Tuple[int, int], frozenset]] = []
        for seg, closure in edges:
            if merged and merged[-1][1] == closure and merged[-1][0][1] + 1 == seg[0]:
                merged[-1] = ((merged[-1][0][0], seg[1]), closure)
            else:
                merged.append((seg, closure))
        for (lo, hi), closure in merged:
            target_id = get_state(closure)
            if closure not in done:
                work.append(closure)
            ds.add_edge(lo, hi, target_id)
        ds.sort_edges()  # bisect requires sorted intervals
    return dfa
