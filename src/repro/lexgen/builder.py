"""Compile lexer rules of a grammar into a runnable tokenizer.

Thompson construction per element, one NFA branch per non-fragment
lexer rule, plus one branch per implicit literal token (keywords quoted
inside parser rules).  Priorities: implicit literals first (so ``'int'``
beats ``ID``), then lexer rules in definition order.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.exceptions import GrammarError
from repro.grammar import ast
from repro.grammar.model import Grammar, Rule
from repro.lexgen.dfa import build_lexer_dfa
from repro.lexgen.lexer import LexerSpec
from repro.lexgen.nfa import MAX_CODEPOINT, NFA, NFAState
from repro.util.intervals import IntervalSet


def build_lexer(grammar: Grammar, minimize: bool = True) -> LexerSpec:
    """Build the lexer spec (DFA + vocabulary bindings) for a grammar.

    ``minimize`` runs Moore partition refinement on the subset-construction
    DFA; tokenization is unchanged, the tables just get smaller.
    """
    spec = _LexerBuilder(grammar).build()
    if minimize:
        from repro.lexgen.minimize import minimize_lexer_dfa

        spec.dfa = minimize_lexer_dfa(spec.dfa)
    return spec


class _LexerBuilder:
    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.nfa = NFA()
        self._building: Set[str] = set()  # fragment-recursion guard

    def build(self) -> LexerSpec:
        start = self.nfa.new_state()
        self.nfa.start = start
        priority = 0

        # Implicit literal tokens first: keywords beat identifier rules.
        for literal, token_type in sorted(self.grammar.vocabulary.literals().items()):
            frag_start, frag_end = self._literal(literal)
            frag_end.accept_rule = (priority, "'%s'" % literal, ())
            start.add_edge(None, frag_start)
            priority += 1

        lexer_rules = [r for r in self.grammar.lexer_rules if not r.is_fragment]
        if not lexer_rules and not self.grammar.vocabulary.literals():
            raise GrammarError(
                "grammar %s has no lexer rules; use a token-stream parser instead"
                % self.grammar.name)
        for rule in lexer_rules:
            frag_start, frag_end = self._rule_body(rule)
            frag_end.accept_rule = (priority, rule.name, tuple(rule.commands))
            start.add_edge(None, frag_start)
            priority += 1

        dfa = build_lexer_dfa(self.nfa)
        return LexerSpec(dfa, self.grammar.vocabulary)

    # -- Thompson construction ------------------------------------------------

    def _rule_body(self, rule: Rule) -> Tuple[NFAState, NFAState]:
        if rule.name in self._building:
            raise GrammarError(
                "recursive lexer rule %s (lexer rules must be regular)" % rule.name)
        self._building.add(rule.name)
        try:
            alts = [self._sequence(alt.elements) for alt in rule.alternatives]
            return self._union(alts)
        finally:
            self._building.discard(rule.name)

    def _union(self, fragments) -> Tuple[NFAState, NFAState]:
        if len(fragments) == 1:
            return fragments[0]
        start = self.nfa.new_state()
        end = self.nfa.new_state()
        for frag_start, frag_end in fragments:
            start.add_edge(None, frag_start)
            frag_end.add_edge(None, end)
        return start, end

    def _sequence(self, elements) -> Tuple[NFAState, NFAState]:
        start = self.nfa.new_state()
        current = start
        for el in elements:
            frag_start, frag_end = self._element(el)
            current.add_edge(None, frag_start)
            current = frag_end
        return start, current

    def _element(self, el: ast.Element) -> Tuple[NFAState, NFAState]:
        if isinstance(el, ast.Epsilon):
            s = self.nfa.new_state()
            return s, s
        if isinstance(el, ast.Literal):
            return self._literal(el.text)
        if isinstance(el, ast.CharSet):
            ivals = el.intervals
            if el.negated:
                ivals = ivals.complement(0, MAX_CODEPOINT)
            return self._char_edge(ivals)
        if isinstance(el, ast.CharRange):
            return self._char_edge(IntervalSet.char_range(el.lo, el.hi))
        if isinstance(el, ast.Wildcard):
            return self._char_edge(IntervalSet([(0, MAX_CODEPOINT)]))
        if isinstance(el, ast.RuleRef):
            target = self.grammar.rule(el.name)
            if not target.is_lexer_rule:
                raise GrammarError("lexer rule references parser rule %s" % el.name)
            return self._rule_body(target)
        if isinstance(el, ast.TokenRef):
            # In lexer rules, uppercase refs mean other lexer (fragment) rules.
            target = self.grammar.rule(el.name)
            return self._rule_body(target)
        if isinstance(el, ast.Sequence):
            return self._sequence(el.elements)
        if isinstance(el, ast.Block):
            return self._union([self._element(a) for a in el.alternatives])
        if isinstance(el, ast.Optional_):
            frag_start, frag_end = self._element(el.element)
            start = self.nfa.new_state()
            end = self.nfa.new_state()
            start.add_edge(None, frag_start)
            frag_end.add_edge(None, end)
            start.add_edge(None, end)
            return start, end
        if isinstance(el, ast.Star):
            frag_start, frag_end = self._element(el.element)
            start = self.nfa.new_state()
            end = self.nfa.new_state()
            start.add_edge(None, frag_start)
            start.add_edge(None, end)
            frag_end.add_edge(None, frag_start)
            frag_end.add_edge(None, end)
            return start, end
        if isinstance(el, ast.Plus):
            frag_start, frag_end = self._element(el.element)
            end = self.nfa.new_state()
            frag_end.add_edge(None, frag_start)
            frag_end.add_edge(None, end)
            return frag_start, end
        if isinstance(el, (ast.SemanticPredicate, ast.Action, ast.SyntacticPredicate)):
            # Ignored in lexer rules (validation warns); epsilon behaviour.
            s = self.nfa.new_state()
            return s, s
        raise GrammarError("unsupported element %r in lexer rule" % el)

    def _literal(self, text: str) -> Tuple[NFAState, NFAState]:
        start = self.nfa.new_state()
        current = start
        for ch in text:
            nxt = self.nfa.new_state()
            current.add_edge(IntervalSet.of_chars(ch), nxt)
            current = nxt
        return start, current

    def _char_edge(self, ivals: IntervalSet) -> Tuple[NFAState, NFAState]:
        start = self.nfa.new_state()
        end = self.nfa.new_state()
        start.add_edge(ivals, end)
        return start, end
