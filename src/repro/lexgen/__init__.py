"""Lexer generator: lexer grammar rules -> DFA tokenizer.

ANTLR is not scannerless (Section 6, "Rats! is also scannerless, unlike
ANTLR"), so the reproduction needs a real lexing substrate.  Lexer rules
from the combined grammar compile via Thompson construction to an NFA
(:mod:`repro.lexgen.nfa`), then via subset construction over character
intervals to a DFA (:mod:`repro.lexgen.dfa`), which a maximal-munch
tokenizer drives (:mod:`repro.lexgen.lexer`).

Rule priority follows ANTLR: implicit literal tokens (keywords quoted in
parser rules) beat explicit lexer rules at equal match length; earlier
rules beat later ones.
"""

from repro.lexgen.nfa import NFA, NFAState
from repro.lexgen.dfa import LexerDFA, build_lexer_dfa
from repro.lexgen.builder import build_lexer
from repro.lexgen.lexer import DFATokenizer, LexerSpec

__all__ = [
    "NFA",
    "NFAState",
    "LexerDFA",
    "build_lexer_dfa",
    "build_lexer",
    "DFATokenizer",
    "LexerSpec",
]
