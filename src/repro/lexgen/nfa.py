"""Character-level NFA with interval-labelled edges (Thompson style)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.util.intervals import IntervalSet

#: Highest code point edges may cover; complements (~[...]) span this.
MAX_CODEPOINT = 0x10FFFF


class NFAState:
    """NFA node.  ``accept_rule`` is ``(priority, token_name, commands)``
    on accepting states; lower priority wins ties."""

    __slots__ = ("id", "edges", "accept_rule")

    def __init__(self, state_id: int):
        self.id = state_id
        #: (label, target); label None == epsilon, else IntervalSet of chars
        self.edges: List[Tuple[Optional[IntervalSet], "NFAState"]] = []
        self.accept_rule: Optional[Tuple[int, str, tuple]] = None

    def add_edge(self, label: Optional[IntervalSet], target: "NFAState") -> None:
        self.edges.append((label, target))

    def __repr__(self):
        acc = "!" + self.accept_rule[1] if self.accept_rule else ""
        return "n%d%s" % (self.id, acc)


class NFA:
    """NFA container with a single combined start state."""

    def __init__(self):
        self.states: List[NFAState] = []
        self.start: Optional[NFAState] = None

    def new_state(self) -> NFAState:
        s = NFAState(len(self.states))
        self.states.append(s)
        return s

    def epsilon_closure(self, states) -> frozenset:
        """Set of NFA state ids reachable via epsilon edges."""
        seen = set()
        work = list(states)
        while work:
            s = work.pop()
            if s.id in seen:
                continue
            seen.add(s.id)
            for label, target in s.edges:
                if label is None:
                    work.append(target)
        return frozenset(seen)

    def __repr__(self):
        return "NFA(%d states)" % len(self.states)
