"""Lexer-DFA minimization (Moore partition refinement).

Subset construction tends to mint distinguishable-in-name-only states,
especially with many keyword literals sharing prefixes with the
identifier rule.  Minimization merges states that are equivalent under
(accept label, successor partitions), shrinking the transition tables
the tokenizer walks on every character.

Moore's algorithm rather than Hopcroft: partitions refine by whole-state
signature, which extends naturally to interval-labelled edges (the
signature of a state is its accept label plus its interval->partition
map, with adjacent intervals mapping to the same partition coalesced).
For lexer-sized automata the O(n^2)-ish behaviour is irrelevant.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lexgen.dfa import LexerDFA, LexerDFAState


def minimize_lexer_dfa(dfa: LexerDFA) -> LexerDFA:
    """Return an equivalent DFA with equivalence classes merged."""
    n = len(dfa.states)
    if n == 0:
        return dfa

    # Initial partition: by accept label (None vs each distinct label).
    part: List[int] = [0] * n
    labels: Dict[object, int] = {}
    for i, state in enumerate(dfa.states):
        key = state.accept
        if key not in labels:
            labels[key] = len(labels)
        part[i] = labels[key]

    def signature(state: LexerDFAState) -> Tuple:
        sig: List[Tuple[int, int, int]] = []
        for lo, hi, target in zip(state.los, state.his, state.targets):
            p = part[target]
            if sig and sig[-1][2] == p and sig[-1][1] + 1 == lo:
                sig[-1] = (sig[-1][0], hi, p)
            else:
                sig.append((lo, hi, p))
        return (part_label(state), tuple(sig))

    def part_label(state: LexerDFAState):
        return state.accept

    # Refine to fixpoint.
    while True:
        buckets: Dict[Tuple, int] = {}
        new_part: List[int] = [0] * n
        for i, state in enumerate(dfa.states):
            key = (part[i], signature(state))
            if key not in buckets:
                buckets[key] = len(buckets)
            new_part[i] = buckets[key]
        if new_part == part:
            break
        part = new_part

    num_classes = max(part) + 1
    if num_classes == n:
        return dfa  # already minimal

    # Build the quotient automaton; class of the old start comes first.
    order: List[int] = []
    remap: Dict[int, int] = {}
    for old in [dfa.start_id] + list(range(n)):
        cls = part[old]
        if cls not in remap:
            remap[cls] = len(order)
            order.append(old)

    out = LexerDFA()
    for representative in order:
        old_state = dfa.states[representative]
        new_state = LexerDFAState(len(out.states))
        new_state.accept = old_state.accept
        merged: List[Tuple[int, int, int]] = []
        for lo, hi, target in zip(old_state.los, old_state.his,
                                  old_state.targets):
            t = remap[part[target]]
            if merged and merged[-1][2] == t and merged[-1][1] + 1 == lo:
                merged[-1] = (merged[-1][0], hi, t)
            else:
                merged.append((lo, hi, t))
        new_state.los = [lo for lo, _hi, _t in merged]
        new_state.his = [hi for _lo, hi, _t in merged]
        new_state.targets = [t for _lo, _hi, t in merged]
        out.states.append(new_state)
    out.start_id = 0
    return out
