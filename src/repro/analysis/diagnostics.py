"""Analysis diagnostics: grammar ambiguities, recursion overflow,
non-LL-regular aborts, and the DFA state budget.

One of the paper's selling points over GLR/PEG tools (Section 1.1):
LL(*) analysis can *statically* identify some grammar ambiguities and
dead productions and warn the user, instead of silently accepting them.
"""

from __future__ import annotations

from typing import List, Optional


class AnalysisDiagnostic:
    AMBIGUITY = "ambiguity"
    OVERFLOW = "recursion-overflow"
    NON_LL_REGULAR = "non-ll-regular"
    STATE_BUDGET = "state-budget"
    DEAD_ALTERNATIVE = "dead-alternative"
    DEGRADED = "degraded"

    def __init__(self, kind: str, decision: int, message: str,
                 alts: Optional[List[int]] = None, chosen: Optional[int] = None):
        self.kind = kind
        self.decision = decision
        self.message = message
        self.alts = list(alts) if alts else []
        self.chosen = chosen

    @classmethod
    def ambiguity(cls, decision: int, alts, chosen: int) -> "AnalysisDiagnostic":
        return cls(cls.AMBIGUITY, decision,
                   "decision %d: alternatives %s are ambiguous for some input; "
                   "resolving in favour of alternative %d" % (decision, list(alts), chosen),
                   alts=alts, chosen=chosen)

    @classmethod
    def overflow(cls, decision: int, alts, chosen: int) -> "AnalysisDiagnostic":
        return cls(cls.OVERFLOW, decision,
                   "decision %d: recursion overflow while computing lookahead; "
                   "alternatives %s may be ambiguous, resolving in favour of %d"
                   % (decision, list(alts), chosen), alts=alts, chosen=chosen)

    @classmethod
    def non_ll_regular(cls, decision: int, alts) -> "AnalysisDiagnostic":
        return cls(cls.NON_LL_REGULAR, decision,
                   "decision %d: recursion in more than one alternative %s; "
                   "lookahead language unlikely to be regular, falling back to LL(1)"
                   % (decision, sorted(alts)), alts=sorted(alts))

    @classmethod
    def state_budget(cls, decision: int, detail: str) -> "AnalysisDiagnostic":
        return cls(cls.STATE_BUDGET, decision, detail)

    @classmethod
    def degraded(cls, decision: int, detail: str) -> "AnalysisDiagnostic":
        """A compiled artifact for ``decision`` could not be used (e.g. a
        corrupt cache record); the runtime will rebuild its DFA on first
        use instead of failing the compile."""
        return cls(cls.DEGRADED, decision,
                   "decision %d: %s; lookahead DFA will be rebuilt on "
                   "first use" % (decision, detail))

    @classmethod
    def dead_alternative(cls, decision: int, alts) -> "AnalysisDiagnostic":
        return cls(cls.DEAD_ALTERNATIVE, decision,
                   "decision %d: alternative(s) %s can never be predicted "
                   "(dead production)" % (decision, sorted(alts)), alts=sorted(alts))

    def to_dict(self) -> dict:
        """JSON-safe form for the compiled-artifact cache."""
        return {
            "kind": self.kind,
            "decision": self.decision,
            "message": self.message,
            "alts": list(self.alts),
            "chosen": self.chosen,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisDiagnostic":
        return cls(data["kind"], data["decision"], data["message"],
                   alts=data["alts"], chosen=data["chosen"])

    def __repr__(self):
        return "[%s] %s" % (self.kind, self.message)
