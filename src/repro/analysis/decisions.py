"""Whole-grammar analysis facade and decision classification.

``analyze(grammar)`` produces an :class:`AnalysisResult`: the ATN, one
:class:`DecisionRecord` per decision (DFA + classification), and all
diagnostics.  Classification buckets follow Table 1 of the paper:

* **fixed** — acyclic DFA with no synpred edges: plain LL(k), with the
  record carrying k;
* **cyclic** — DFA with a cycle but no synpred edges: arbitrary
  regular lookahead, beyond any LL(k);
* **backtrack** — DFA with at least one syntactic-predicate edge: the
  decision *may* speculate at parse time.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.analysis.construction import AnalysisOptions, DecisionAnalyzer
from repro.analysis.dfa_model import DFA
from repro.analysis.diagnostics import AnalysisDiagnostic
from repro.atn.builder import build_atn
from repro.atn.states import ATN
from repro.grammar.model import Grammar
from repro.grammar.transforms import apply_peg_mode, erase_syntactic_predicates
from repro.tables.lookahead import DecisionTable, compile_decision_table
from repro.tables.pool import SemCtxPool
from repro.tables.tableset import TableSet

FIXED = "fixed"
CYCLIC = "cyclic"
BACKTRACK = "backtrack"


class DecisionRecord:
    """One decision's analysis outcome.

    The record holds *two* faces of the same lookahead machine: the
    object-graph :class:`DFA` (the analysis-time representation the
    DecisionAnalyzer builds and the diagnostics/tools walk) and the flat
    :class:`DecisionTable` (the execution core the parser, cache, and
    codegen share).  Either side can be absent and is derived from the
    other on demand — ``compile_decision_table`` going one way,
    ``DecisionTable.to_dfa`` (lossless) going back — so assigning
    :attr:`dfa` always invalidates the table and vice versa.
    """

    def __init__(self, decision: int, rule_name: str, kind: str, dfa: DFA):
        self.decision = decision
        self.rule_name = rule_name
        self.kind = kind  # DecisionKind: rule/block/optional/star/plus
        self._dfa: Optional[DFA] = dfa
        self._table: Optional[DecisionTable] = None
        self._pool: Optional[SemCtxPool] = None
        # Classification is lazy (see the ``category`` property): a warm
        # start materialises hundreds of records whose shape most parses
        # never ask about, and classifying a zero-copy table walks its
        # arrays — i.e. touches mmap pages.  Deferring it keeps warm
        # start O(decisions) dict work with no page faults.
        self._category: Optional[str] = None
        self._fixed_k: Optional[int] = None
        #: True when this record carries a placeholder DFA (its cached
        #: form was unusable); the parser rebuilds the real DFA on first
        #: use via DecisionAnalyzer and calls :meth:`replace_dfa`.
        self.degraded = False

    @classmethod
    def from_table(cls, decision: int, rule_name: str, kind: str,
                   table: DecisionTable) -> "DecisionRecord":
        """Warm-start construction straight from a deserialized table;
        the object-graph DFA is decompiled lazily if anything asks."""
        record = cls.__new__(cls)
        record.decision = decision
        record.rule_name = rule_name
        record.kind = kind
        record._dfa = None
        record._table = table
        record._pool = table.pool
        record._category = None  # classified lazily from table shape
        record._fixed_k = None
        record.degraded = False
        return record

    def _shape(self):
        """Whichever representation exists (both answer the same
        is_cyclic/fixed_k/uses_backtracking shape queries)."""
        return self._dfa if self._dfa is not None else self._table

    def _classify(self) -> str:
        shape = self._shape()
        if shape.uses_backtracking():
            return BACKTRACK
        if shape.is_cyclic():
            return CYCLIC
        return FIXED

    @property
    def category(self) -> str:
        """Table 1 bucket, derived from the machine's shape on first use
        (and then sticky — see the :attr:`dfa` setter)."""
        if self._category is None:
            self._category = self._classify()
            if self._category == FIXED:
                self._fixed_k = self._shape().fixed_k()
        return self._category

    @category.setter
    def category(self, value: str) -> None:
        self._category = value

    @property
    def fixed_k(self) -> Optional[int]:
        """Lookahead depth k for fixed decisions, None otherwise;
        forcing it classifies the record."""
        if self._category is None:
            _ = self.category
        return self._fixed_k

    @fixed_k.setter
    def fixed_k(self, value: Optional[int]) -> None:
        self._fixed_k = value

    # -- the two representations -------------------------------------------------

    @property
    def dfa(self) -> Optional[DFA]:
        if self._dfa is None and self._table is not None:
            self._dfa = self._table.to_dfa()
        return self._dfa

    @dfa.setter
    def dfa(self, dfa: Optional[DFA]) -> None:
        # Direct assignment (degraded-mode tests, tools) must never leave
        # a stale table behind; classification is NOT re-derived here,
        # matching the old plain-attribute semantics — use replace_dfa()
        # for a rebuild that should reclassify.  An unclassified record
        # pins the *outgoing* machine's classification first, so lazy
        # derivation can never silently read the swapped-in machine.
        if self._category is None and (self._dfa is not None
                                       or self._table is not None):
            _ = self.category
        self._dfa = dfa
        self._table = None

    @property
    def table(self) -> Optional[DecisionTable]:
        """The flat execution table, compiled on first use against the
        bound pool (or a private one).  None while the record is a
        degraded shell with no DFA either."""
        if self._table is None and self._dfa is not None:
            if self._pool is None:
                self._pool = SemCtxPool()
            self._table = compile_decision_table(self._dfa, self._pool)
        return self._table

    def bind_pool(self, pool: SemCtxPool) -> None:
        """Intern this record's gates into a shared pool and compile its
        table.  Called serially in decision order by
        :class:`AnalysisResult` so pool indices are deterministic no
        matter how many threads built the DFAs."""
        self._pool = pool
        if self._dfa is not None:
            self._table = compile_decision_table(self._dfa, pool)

    @property
    def can_backtrack(self) -> bool:
        return self.category == BACKTRACK

    def replace_dfa(self, dfa: DFA) -> None:
        """Swap in a freshly built DFA (degraded-mode rebuild at parse
        time) and re-derive the classification from its shape."""
        self.dfa = dfa  # property: invalidates the table
        self.category = self._classify()
        self.fixed_k = dfa.fixed_k() if self.category == FIXED else None
        self.degraded = False

    @classmethod
    def degraded_placeholder(cls, decision: int, rule_name: str, kind: str,
                             num_alternatives: int) -> "DecisionRecord":
        """A record whose DFA is an empty shell (``start`` is None); the
        parser detects it and rebuilds the DFA on first use."""
        record = cls(decision, rule_name, kind,
                     DFA(decision, rule_name, num_alternatives))
        record.degraded = True
        return record

    def to_dict(self) -> dict:
        """JSON-safe form; category/fixed_k are derived, not stored.

        The serialized body is the flat table (pool indices resolve
        against the owning :class:`AnalysisResult`'s shared pool, which
        serializes alongside the records).
        """
        return {
            "decision": self.decision,
            "rule_name": self.rule_name,
            "kind": self.kind,
            "table": self.table.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict, pool: SemCtxPool,
                  validate: bool = True) -> "DecisionRecord":
        # from_table re-classifies from table shape, so a cached record
        # can never disagree with the machine it carries.
        return cls.from_table(data["decision"], data["rule_name"],
                              data["kind"],
                              DecisionTable.from_dict(data["table"], pool,
                                                      validate=validate))

    def __repr__(self):
        extra = " k=%s" % self.fixed_k if self.fixed_k else ""
        return "DecisionRecord(%d in %s: %s%s)" % (
            self.decision, self.rule_name, self.category, extra)


class AnalysisResult:
    """Everything static analysis learned about a grammar."""

    def __init__(self, grammar: Grammar, atn: ATN, records: List[DecisionRecord],
                 diagnostics: List[AnalysisDiagnostic], elapsed_seconds: float,
                 pool: Optional[SemCtxPool] = None):
        self.grammar = grammar
        self.atn = atn
        self.records = records
        self.diagnostics = diagnostics
        self.elapsed_seconds = elapsed_seconds
        #: Shared interned-gate pool for every decision table.  Binding
        #: happens here, serially in decision order, so pool indices (and
        #: therefore serialized payloads) are bit-identical whether the
        #: DFAs were analyzed serially or on N threads.
        self.pool = pool if pool is not None else SemCtxPool()
        for record in records:
            if record._pool is not self.pool:
                record.bind_pool(self.pool)

    # -- lookups ----------------------------------------------------------------

    def dfa_for(self, decision: int) -> DFA:
        return self.records[decision].dfa

    def record(self, decision: int) -> DecisionRecord:
        return self.records[decision]

    def table_set(self, lexer=None) -> TableSet:
        """The grammar's complete execution core (see :mod:`repro.tables`)."""
        return TableSet(self.pool, [r.table for r in self.records], lexer)

    # -- Table 1 / Table 2 style aggregates ----------------------------------------

    @property
    def num_decisions(self) -> int:
        return len(self.records)

    def count(self, category: str) -> int:
        return sum(1 for r in self.records if r.category == category)

    def fixed_k_histogram(self) -> Dict[int, int]:
        """Number of fixed decisions per lookahead depth k (Table 2)."""
        hist: Dict[int, int] = {}
        for r in self.records:
            if r.category == FIXED and r.fixed_k is not None:
                hist[r.fixed_k] = hist.get(r.fixed_k, 0) + 1
        return dict(sorted(hist.items()))

    def percent(self, category: str) -> float:
        if not self.records:
            return 0.0
        return 100.0 * self.count(category) / len(self.records)

    def percent_ll1(self) -> float:
        if not self.records:
            return 0.0
        ll1 = sum(1 for r in self.records if r.category == FIXED and r.fixed_k == 1)
        return 100.0 * ll1 / len(self.records)

    def summary(self) -> str:
        lines = [
            "grammar %s: %d decisions" % (self.grammar.name, self.num_decisions),
            "  fixed LL(k): %d (%.1f%%)" % (self.count(FIXED), self.percent(FIXED)),
            "  cyclic:      %d (%.1f%%)" % (self.count(CYCLIC), self.percent(CYCLIC)),
            "  backtrack:   %d (%.1f%%)" % (self.count(BACKTRACK), self.percent(BACKTRACK)),
            "  analysis time: %.3fs" % self.elapsed_seconds,
        ]
        hist = self.fixed_k_histogram()
        if hist:
            lines.append("  fixed-k histogram: %s"
                         % " ".join("k=%d:%d" % kv for kv in hist.items()))
        for d in self.diagnostics:
            lines.append("  %r" % d)
        return "\n".join(lines)

    # -- artifact serialization (repro.cache) ------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form of everything analysis computed.

        The grammar and ATN are *not* stored: a warm start re-derives
        them from the grammar text (cheap, and they carry live Python
        objects like compiled actions), then grafts these records back on
        via :meth:`from_dict`.

        Records serialize as flat :class:`DecisionTable` dicts whose
        pool indices resolve against the shared ``pool`` entry; record
        serialization runs first because compiling a table may intern
        gates into the pool.
        """
        from repro.tables.tableset import TABLE_FORMAT_VERSION

        records = [r.to_dict() for r in self.records]
        return {
            "grammar_name": self.grammar.name,
            "elapsed_seconds": self.elapsed_seconds,
            "table_version": TABLE_FORMAT_VERSION,
            "pool": self.pool.to_dict(),
            "records": records,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, grammar: Grammar, atn: ATN, data: dict,
                  validate: bool = True) -> "AnalysisResult":
        """Rebuild a result against a freshly prepared ``grammar``/``atn``
        (see :meth:`GrammarAnalyzer.prepare_atn`).

        Deserialization is salvaged per decision: a record whose stored
        form is unusable (bit rot that survived JSON parsing) becomes a
        degraded placeholder plus a ``degraded`` diagnostic, instead of
        sinking the whole warm start; the parser rebuilds such DFAs on
        first use.  Payload-level inconsistencies (wrong decision count,
        missing keys) still raise — those mean the entry belongs to a
        different grammar, not a damaged copy of this one.

        ``validate=False`` (checksummed mmap sources only) skips the
        per-table structural sweep and keeps array rows zero-copy.
        """
        from repro.exceptions import ArtifactFormatError
        from repro.tables.tableset import TABLE_FORMAT_VERSION

        if len(data["records"]) != len(atn.decisions):
            raise ValueError(
                "cache entry has %d decisions, grammar has %d"
                % (len(data["records"]), len(atn.decisions)))
        if data.get("table_version") != TABLE_FORMAT_VERSION:
            raise ArtifactFormatError("table format %r != %d"
                                      % (data.get("table_version"),
                                         TABLE_FORMAT_VERSION))
        pool = SemCtxPool.from_dict(data["pool"])
        records: List[DecisionRecord] = []
        diagnostics = [AnalysisDiagnostic.from_dict(dd)
                       for dd in data["diagnostics"]]
        for info, rd in zip(atn.decisions, data["records"]):
            try:
                record = DecisionRecord.from_dict(rd, pool, validate=validate)
                if (record.decision != info.decision
                        or record.rule_name != info.rule_name):
                    raise ValueError("record does not match its decision")
            except Exception as e:
                record = DecisionRecord.degraded_placeholder(
                    info.decision, info.rule_name, info.kind,
                    info.num_alternatives)
                diagnostics.append(AnalysisDiagnostic.degraded(
                    info.decision, "cached record unusable (%s)" % e))
            records.append(record)
        return cls(grammar, atn, records, diagnostics,
                   data["elapsed_seconds"], pool=pool)

    def __repr__(self):
        return "AnalysisResult(%s: %d decisions, %d diagnostics)" % (
            self.grammar.name, self.num_decisions, len(self.diagnostics))


class GrammarAnalyzer:
    """Runs the full static pipeline over a grammar.

    Steps: (1) PEG mode if ``backtrack=true``; (2) erase syntactic
    predicates into synpred rules; (3) build the ATN; (4) per decision,
    run :class:`DecisionAnalyzer`.  The input grammar is mutated by the
    transforms, which matches ANTLR (the grammar object *is* the
    compilation unit).
    """

    def __init__(self, grammar: Grammar, options: Optional[AnalysisOptions] = None):
        self.grammar = grammar
        self.options = options or AnalysisOptions()

    def prepare_atn(self) -> ATN:
        """Steps (1)-(3): mutate the grammar and build the ATN.

        Split out from :meth:`analyze` so a cache warm start
        (:mod:`repro.cache`) can run the identical grammar preparation and
        then attach deserialized decision records instead of re-running
        :class:`DecisionAnalyzer`.
        """
        k = self.grammar.option("k")
        if isinstance(k, int) and self.options.max_fixed_lookahead is None:
            self.options = self.options.replace(max_fixed_lookahead=k)
        if self.grammar.option("backtrack", False):
            apply_peg_mode(self.grammar)
        erase_syntactic_predicates(self.grammar)
        return build_atn(self.grammar)

    def analyze(self, parallel: Optional[int] = None) -> AnalysisResult:
        started = time.perf_counter()
        atn = self.prepare_atn()
        start_rule = self.grammar.start_rule
        if parallel is not None and parallel > 1 and len(atn.decisions) > 1:
            outcomes = self._analyze_parallel(atn, start_rule, parallel)
        else:
            outcomes = [self._analyze_decision(atn, info.decision, start_rule)
                        for info in atn.decisions]
        records: List[DecisionRecord] = []
        diagnostics: List[AnalysisDiagnostic] = []
        for record, decision_diags in outcomes:
            records.append(record)
            diagnostics.extend(decision_diags)
        elapsed = time.perf_counter() - started
        return AnalysisResult(self.grammar, atn, records, diagnostics, elapsed)

    def _analyze_decision(
            self, atn: ATN, decision: int, start_rule: Optional[str],
    ) -> Tuple[DecisionRecord, List[AnalysisDiagnostic]]:
        """One decision's full analysis: DFA plus its diagnostics, in the
        order the serial loop would have emitted them."""
        info = atn.decisions[decision]
        analyzer = DecisionAnalyzer(atn, decision, start_rule=start_rule,
                                    options=self.options)
        dfa = analyzer.create_dfa()
        diagnostics = list(analyzer.diagnostics)
        dead = dfa.unreachable_alts()
        if dead and not dfa.fell_back_to_ll1:
            diagnostics.append(AnalysisDiagnostic.dead_alternative(decision, dead))
        record = DecisionRecord(decision, info.rule_name, info.kind, dfa)
        return record, diagnostics

    def _analyze_parallel(self, atn: ATN, start_rule: Optional[str],
                          parallel: int) -> List[Tuple[DecisionRecord,
                                                       List[AnalysisDiagnostic]]]:
        """Analyze independent decisions concurrently.

        Each :class:`DecisionAnalyzer` owns all the state it mutates and
        only reads the shared ATN/grammar, so threads need no locking;
        results are collected in decision order, making records and
        diagnostics bit-for-bit identical to the serial loop regardless
        of scheduling.  On GIL builds the speedup for this pure-Python
        workload is modest; free-threaded interpreters scale with N.
        """
        from concurrent.futures import ThreadPoolExecutor

        workers = min(parallel, len(atn.decisions))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(self._analyze_decision, atn, info.decision,
                                   start_rule)
                       for info in atn.decisions]
            return [f.result() for f in futures]


def analyze(grammar: Grammar, options: Optional[AnalysisOptions] = None,
            parallel: Optional[int] = None) -> AnalysisResult:
    """Convenience wrapper: ``GrammarAnalyzer(grammar, options).analyze()``.

    ``parallel=N`` analyzes decisions on N threads; the result is
    identical to a serial run (see :meth:`GrammarAnalyzer._analyze_parallel`).
    """
    return GrammarAnalyzer(grammar, options).analyze(parallel=parallel)
