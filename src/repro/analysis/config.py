"""ATN configurations and Definition-6 stack equivalence.

An ATN configuration is the tuple ``(p, i, gamma, pi)``: ATN state,
predicted production, call stack of return states, and the semantic
context (predicates collected along the closure path).  Stacks are
immutable tuples with the **top of stack at index 0**, so the "suffix"
of Definition 6 (shared older frames) is a trailing slice.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.atn.states import ATNState
from repro.atn.transitions import Predicate

#: A call stack: tuple of follow (return) states, top first.
Stack = Tuple[ATNState, ...]

EMPTY_STACK: Stack = ()


def stacks_equivalent(g1: Stack, g2: Stack) -> bool:
    """Definition 6: equal, at least one empty, or one a suffix of the other.

    An empty stack is a wildcard: closure reached a rule stop state
    without knowing the caller, so it stands for *any* invocation
    context.  A shared suffix means both configurations were reached
    through the same most-recent chain of submachine invocations.
    """
    if not g1 or not g2:
        return True
    if len(g1) == len(g2):
        return g1 == g2
    shorter, longer = (g1, g2) if len(g1) < len(g2) else (g2, g1)
    return longer[len(longer) - len(shorter):] == shorter


class ATNConfig:
    """One configuration ``(p, i, gamma, pi)`` inside a DFA state.

    ``preds`` is the tuple of predicates (conjunction) collected along
    the closure path; empty tuple means unpredicated.  ``resolved``
    marks configurations whose ambiguity was resolved by a predicate
    (Algorithm 11's ``wasResolved``).
    """

    __slots__ = ("state", "alt", "stack", "preds", "resolved", "in_follow")

    def __init__(self, state: ATNState, alt: int, stack: Stack = EMPTY_STACK,
                 preds: Tuple[Predicate, ...] = (), in_follow: bool = False):
        self.state = state
        self.alt = alt
        self.stack = stack
        self.preds = preds
        self.resolved = False
        # True once closure popped past the decision's own frame (chased
        # grammar-wide call sites).  Predicates found beyond that point
        # belong to *caller* frames and must not be hoisted into this
        # decision's gate — evaluating them in the current frame would be
        # unsound (e.g. the precedence-climbing loop's `_p`).
        self.in_follow = in_follow

    # -- derivation helpers (closure uses these) --------------------------------

    def with_state(self, state: ATNState) -> "ATNConfig":
        return ATNConfig(state, self.alt, self.stack, self.preds, self.in_follow)

    def push(self, state: ATNState, return_state: ATNState) -> "ATNConfig":
        return ATNConfig(state, self.alt, (return_state,) + self.stack, self.preds,
                         self.in_follow)

    def pop(self) -> "ATNConfig":
        return ATNConfig(self.stack[0], self.alt, self.stack[1:], self.preds,
                         self.in_follow)

    def with_empty_stack_at(self, state: ATNState) -> "ATNConfig":
        return ATNConfig(state, self.alt, EMPTY_STACK, self.preds, in_follow=True)

    def adding_pred(self, pred: Predicate) -> "ATNConfig":
        if self.in_follow or pred in self.preds:
            return ATNConfig(self.state, self.alt, self.stack, self.preds,
                             self.in_follow)
        if pred.is_synpred and any(p.is_synpred for p in self.preds):
            # An outer synpred subsumes inner ones: speculating the outer
            # fragment re-speculates everything nested inside it, so only
            # the first syntactic predicate on a path is useful for
            # resolution.  Dropping the rest also keeps PEG-mode closure
            # finite — otherwise every nested decision's auto-synpred
            # accumulates into the predicate tuple and DFA states never
            # converge (each loop iteration would mint a fresh config).
            return ATNConfig(self.state, self.alt, self.stack, self.preds,
                             self.in_follow)
        return ATNConfig(self.state, self.alt, self.stack, self.preds + (pred,),
                         self.in_follow)

    # -- identity ---------------------------------------------------------------------

    def key(self):
        return (self.state.id, self.alt, tuple(s.id for s in self.stack), self.preds,
                self.in_follow)

    def __eq__(self, other):
        return isinstance(other, ATNConfig) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def conflicts_with(self, other: "ATNConfig") -> bool:
        """Definition 7: same state, different alt, equivalent stacks."""
        return (self.state is other.state
                and self.alt != other.alt
                and stacks_equivalent(self.stack, other.stack))

    @property
    def predicate(self) -> Optional[Predicate]:
        """The single effective predicate, if exactly one was collected."""
        if len(self.preds) == 1:
            return self.preds[0]
        return None

    def __repr__(self):
        stack = "[%s]" % " ".join("s%d" % s.id for s in self.stack)
        preds = "".join(repr(p) for p in self.preds)
        return "(%r, %d, %s%s)" % (self.state, self.alt, stack, preds)
