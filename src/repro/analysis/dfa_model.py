"""Lookahead DFA (Definition 4): DFA over the token alphabet, augmented
with ordered predicate edges and accept states that name the predicted
production.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.semctx import context_from_dict
from repro.atn.transitions import Predicate


class DFAState:
    """One DFA state D: a set of ATN configurations + outgoing edges.

    ``edges`` maps token type -> DFAState.  ``predicate_edges`` is an
    ordered list of ``(semantic_context_or_None, alt, target)``; a
    ``None`` context is the default ("gated else") edge that fires when
    every earlier predicate failed — it implements ordered-choice
    fallback for the highest-numbered conflicting alternative.  Contexts
    are :class:`~repro.analysis.semctx.SemanticContext` trees (hoisted
    AND/OR combinations over predicates and synpreds).
    """

    __slots__ = ("id", "configs", "edges", "predicate_edges", "is_accept",
                 "predicted_alt", "busy", "recursive_alts", "overflowed")

    def __init__(self, state_id: int):
        self.id = state_id
        self.configs: List = []
        self.edges: Dict[int, "DFAState"] = {}
        self.predicate_edges: List[Tuple[Optional[Predicate], int, "DFAState"]] = []
        self.is_accept = False
        self.predicted_alt: Optional[int] = None
        # Construction-time bookkeeping (Algorithm 9).
        self.busy: Set = set()
        self.recursive_alts: Set[int] = set()
        self.overflowed = False

    def config_key(self) -> frozenset:
        return frozenset(c.key() for c in self.configs)

    def predicted_alts(self) -> List[int]:
        """Distinct alternatives predicted by this state's configurations."""
        return sorted({c.alt for c in self.configs})

    @property
    def has_synpred_edge(self) -> bool:
        return any(ctx is not None and ctx.contains_synpred
                   for ctx, _, _ in self.predicate_edges)

    def to_dict(self) -> dict:
        """JSON-safe form; targets are state ids, resolved by :meth:`DFA.from_dict`.

        Construction-time bookkeeping (``configs``, ``busy``) is not
        serialized: it references live ATN state objects and nothing
        after analysis reads it — prediction, classification, and the
        shape queries above only need edges, predicate edges, and the
        accept/alt markers.
        """
        return {
            "id": self.id,
            "is_accept": self.is_accept,
            "predicted_alt": self.predicted_alt,
            "edges": sorted([t, target.id] for t, target in self.edges.items()),
            "predicate_edges": [
                [ctx.to_dict() if ctx is not None else None, alt, target.id]
                for ctx, alt, target in self.predicate_edges],
            "recursive_alts": sorted(self.recursive_alts),
            "overflowed": self.overflowed,
        }

    def __repr__(self):
        if self.is_accept:
            return "D%d=>%d" % (self.id, self.predicted_alt)
        return "D%d" % self.id


class DFA:
    """A lookahead DFA for one decision, plus analysis metadata."""

    def __init__(self, decision: int, rule_name: str, num_alternatives: int):
        self.decision = decision
        self.rule_name = rule_name
        self.num_alternatives = num_alternatives
        self.states: List[DFAState] = []
        self.start: Optional[DFAState] = None
        #: alternatives that analysis statically removed in favour of a
        #: lower-numbered conflicting alternative (ambiguity warnings).
        self.statically_resolved_alts: Set[int] = set()
        self.had_overflow = False
        self.fell_back_to_ll1 = False
        self.gave_up_reason: Optional[str] = None

    def new_state(self) -> DFAState:
        s = DFAState(len(self.states))
        self.states.append(s)
        return s

    # -- shape queries (decision classification, Tables 1-2) ----------------------

    def is_cyclic(self) -> bool:
        """True when the token-edge graph contains a cycle (arbitrary k)."""
        color: Dict[int, int] = {}

        def dfs(s: DFAState) -> bool:
            color[s.id] = 1
            for nxt in s.edges.values():
                c = color.get(nxt.id, 0)
                if c == 1:
                    return True
                if c == 0 and dfs(nxt):
                    return True
            color[s.id] = 2
            return False

        return dfs(self.start) if self.start else False

    def uses_backtracking(self) -> bool:
        return any(s.has_synpred_edge for s in self.states)

    def has_predicate_edges(self) -> bool:
        return any(s.predicate_edges for s in self.states)

    def fixed_k(self) -> Optional[int]:
        """Max lookahead depth if acyclic (the k of LL(k)); None if cyclic.

        Depth counts token edges from the start state to the deepest
        state; an accept reached after consuming j tokens used j tokens
        of lookahead.  A pure predicate test at the start state is
        k = 0 in DFA terms but reported as 1 (the parser still peeks).
        """
        if self.start is None:
            return None
        if self.is_cyclic():
            return None
        depth: Dict[int, int] = {}
        order: List[DFAState] = []
        seen: Set[int] = set()

        def topo(s: DFAState) -> None:
            if s.id in seen:
                return
            seen.add(s.id)
            for nxt in s.edges.values():
                topo(nxt)
            order.append(s)

        topo(self.start)
        best = 0
        depth[self.start.id] = 0
        for s in reversed(order):
            d = depth.get(s.id, 0)
            for nxt in s.edges.values():
                if d + 1 > depth.get(nxt.id, 0):
                    depth[nxt.id] = d + 1
            if d > best:
                best = d
        return max(best, 1)

    def accept_states(self) -> Dict[int, List[DFAState]]:
        out: Dict[int, List[DFAState]] = {}
        for s in self.states:
            if s.is_accept:
                out.setdefault(s.predicted_alt, []).append(s)
        return out

    def reachable_alts(self) -> Set[int]:
        """Alternatives some accept state or predicate edge can predict."""
        alts: Set[int] = set()
        for s in self.states:
            if s.is_accept:
                alts.add(s.predicted_alt)
            for _, alt, _ in s.predicate_edges:
                alts.add(alt)
        return alts

    def unreachable_alts(self) -> Set[int]:
        """Dead productions: defined but never predicted (Section 1.1's
        static detection of dead productions)."""
        return set(range(1, self.num_alternatives + 1)) - self.reachable_alts()

    # -- artifact serialization (repro.cache) ------------------------------------

    def to_dict(self) -> dict:
        """Deterministic JSON-safe form: states in id order, sorted edges."""
        return {
            "decision": self.decision,
            "rule_name": self.rule_name,
            "num_alternatives": self.num_alternatives,
            "start": self.start.id if self.start is not None else None,
            "statically_resolved_alts": sorted(self.statically_resolved_alts),
            "had_overflow": self.had_overflow,
            "fell_back_to_ll1": self.fell_back_to_ll1,
            "gave_up_reason": self.gave_up_reason,
            "states": [s.to_dict() for s in self.states],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DFA":
        dfa = cls(data["decision"], data["rule_name"], data["num_alternatives"])
        for i, _ in enumerate(data["states"]):
            state = dfa.new_state()
            if state.id != data["states"][i]["id"]:
                raise ValueError("non-contiguous DFA state ids in cache entry")
        for sd in data["states"]:
            state = dfa.states[sd["id"]]
            state.is_accept = sd["is_accept"]
            state.predicted_alt = sd["predicted_alt"]
            state.overflowed = sd["overflowed"]
            state.recursive_alts = set(sd["recursive_alts"])
            for token_type, target in sd["edges"]:
                state.edges[token_type] = dfa.states[target]
            state.predicate_edges = [
                (context_from_dict(ctx) if ctx is not None else None,
                 alt, dfa.states[target])
                for ctx, alt, target in sd["predicate_edges"]]
        if data["start"] is not None:
            dfa.start = dfa.states[data["start"]]
        dfa.statically_resolved_alts = set(data["statically_resolved_alts"])
        dfa.had_overflow = data["had_overflow"]
        dfa.fell_back_to_ll1 = data["fell_back_to_ll1"]
        dfa.gave_up_reason = data["gave_up_reason"]
        return dfa

    def __repr__(self):
        return "DFA(decision %d in %s: %d states%s)" % (
            self.decision, self.rule_name, len(self.states),
            ", backtracks" if self.uses_backtracking() else "")
