"""Static LL(*) grammar analysis (Section 5 of the paper).

``analyze(grammar)`` is the facade: it erases syntactic predicates,
builds the ATN, and runs the modified subset construction
(Algorithms 8-11) over every decision, producing one lookahead DFA per
decision plus a classification (fixed LL(k) / cyclic / backtracking)
and any ambiguity or recursion-overflow diagnostics.
"""

from repro.analysis.config import ATNConfig, stacks_equivalent
from repro.analysis.dfa_model import DFA, DFAState
from repro.analysis.construction import AnalysisOptions, DecisionAnalyzer
from repro.analysis.decisions import (
    AnalysisResult,
    DecisionRecord,
    GrammarAnalyzer,
    analyze,
    FIXED,
    CYCLIC,
    BACKTRACK,
)
from repro.analysis.diagnostics import AnalysisDiagnostic
from repro.analysis.sets import GrammarSets

__all__ = [
    "GrammarSets",
    "ATNConfig",
    "stacks_equivalent",
    "DFA",
    "DFAState",
    "AnalysisOptions",
    "DecisionAnalyzer",
    "AnalysisResult",
    "DecisionRecord",
    "GrammarAnalyzer",
    "analyze",
    "FIXED",
    "CYCLIC",
    "BACKTRACK",
    "AnalysisDiagnostic",
]
