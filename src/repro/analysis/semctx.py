"""Semantic contexts: AND/OR combinations of predicates.

Section 5.5 of the paper: "The full algorithm in ANTLR automatically
discovers and hoists all predicates visible to a decision even from
productions further down the derivation chain."  During closure each
configuration accumulates the predicates it traversed (a conjunction);
when several configurations predict the same alternative, the
alternative's effective gate is the *disjunction* of their conjunctions.

An alternative with at least one **unpredicated** path cannot be gated:
the predicate is not required on every derivation, so hoisting it would
wrongly reject inputs.  :func:`context_for_alt` returns ``None`` in that
case and resolution falls back to a default edge or static ordering.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.atn.transitions import Predicate


class SemanticContext:
    """Base: a boolean expression over :class:`Predicate` leaves."""

    # Empty slots keep subclasses' own __slots__ effective (a slotted
    # subclass of a dict-ful base still grows a __dict__).
    __slots__ = ()

    def evaluate(self, eval_leaf) -> bool:
        """``eval_leaf(predicate) -> bool`` supplies leaf evaluation."""
        raise NotImplementedError

    def predicates(self) -> Iterable[Predicate]:
        raise NotImplementedError

    def to_dict(self) -> dict:
        """JSON-safe tagged tree for the compiled-artifact cache."""
        raise NotImplementedError

    @property
    def contains_synpred(self) -> bool:
        return any(p.is_synpred for p in self.predicates())


class PredLeaf(SemanticContext):
    __slots__ = ("predicate",)

    def __init__(self, predicate: Predicate):
        self.predicate = predicate

    def evaluate(self, eval_leaf) -> bool:
        return eval_leaf(self.predicate)

    def predicates(self):
        yield self.predicate

    def to_dict(self) -> dict:
        return {"op": "pred", "pred": self.predicate.to_dict()}

    def __eq__(self, other):
        return isinstance(other, PredLeaf) and self.predicate == other.predicate

    def __hash__(self):
        return hash(("leaf", self.predicate))

    def __repr__(self):
        return repr(self.predicate)


class PredAnd(SemanticContext):
    __slots__ = ("terms",)

    def __init__(self, terms: List[SemanticContext]):
        self.terms = list(terms)

    def evaluate(self, eval_leaf) -> bool:
        return all(t.evaluate(eval_leaf) for t in self.terms)

    def predicates(self):
        for t in self.terms:
            yield from t.predicates()

    def to_dict(self) -> dict:
        return {"op": "and", "terms": [t.to_dict() for t in self.terms]}

    def __eq__(self, other):
        return isinstance(other, PredAnd) and self.terms == other.terms

    def __hash__(self):
        return hash(("and", tuple(self.terms)))

    def __repr__(self):
        return "(%s)" % " && ".join(repr(t) for t in self.terms)


class PredOr(SemanticContext):
    __slots__ = ("terms",)

    def __init__(self, terms: List[SemanticContext]):
        self.terms = list(terms)

    def evaluate(self, eval_leaf) -> bool:
        return any(t.evaluate(eval_leaf) for t in self.terms)

    def predicates(self):
        for t in self.terms:
            yield from t.predicates()

    def to_dict(self) -> dict:
        return {"op": "or", "terms": [t.to_dict() for t in self.terms]}

    def __eq__(self, other):
        return isinstance(other, PredOr) and self.terms == other.terms

    def __hash__(self):
        return hash(("or", tuple(self.terms)))

    def __repr__(self):
        return "(%s)" % " || ".join(repr(t) for t in self.terms)


def context_from_dict(data: dict) -> SemanticContext:
    """Rebuild a context tree from its :meth:`SemanticContext.to_dict` form."""
    op = data["op"]
    if op == "pred":
        return PredLeaf(Predicate.from_dict(data["pred"]))
    terms = [context_from_dict(t) for t in data["terms"]]
    if op == "and":
        return PredAnd(terms)
    if op == "or":
        return PredOr(terms)
    raise ValueError("unknown semantic-context op %r" % op)


def conjunction(preds: Tuple[Predicate, ...]) -> SemanticContext:
    """A configuration's collected predicates form a conjunction."""
    terms = [PredLeaf(p) for p in preds]
    return terms[0] if len(terms) == 1 else PredAnd(terms)


def context_for_alt(configs) -> Optional[SemanticContext]:
    """Hoisted gate for an alternative: OR over its *predicated*
    configurations' conjunctions; ``None`` when no configuration carries
    a predicate.

    Following Algorithm 11 ("pick any representative with a
    predicate"), unpredicated configurations of the same alternative do
    not block resolution — the hazard that a predicate-free derivation
    gets gated anyway is inherited from ANTLR's hoisting semantics and
    documented, not hidden.
    """
    seen = []
    for c in configs:
        if not c.preds:
            continue
        term = conjunction(c.preds)
        if term not in seen:
            seen.append(term)
    if not seen:
        return None
    return seen[0] if len(seen) == 1 else PredOr(seen)
