"""FIRST and FOLLOW sets over the grammar model, plus per-ATN-state
continuation sets.

Classic fixpoint computation, done structurally on the EBNF AST (no
desugaring needed).  Three consumers:

* panic-mode error recovery: after an error in rule A, resynchronise by
  consuming tokens until one in FOLLOW(A) appears (the deterministic-LL
  error-handling advantage the paper claims over speculating parsers);
* inline recovery (:class:`~repro.runtime.errors.DefaultErrorStrategy`)
  and ANTLR-style sync-and-return, which need the set of tokens viable
  *at a specific ATN state* — :class:`AtnContinuationSets` computes
  those on demand from the same tables;
* diagnostics/tooling: the CLI can show FIRST sets per rule.

``FIRST`` maps rule -> set of token types (plus ``EPSILON_TYPE`` when
the rule is nullable); ``FOLLOW`` maps rule -> set of token types (plus
``EOF`` where the rule can end the input).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.grammar import ast
from repro.grammar.model import Grammar
from repro.runtime.token import EOF, EPSILON_TYPE


class GrammarSets:
    """FIRST/FOLLOW tables for one grammar."""

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.first: Dict[str, Set[int]] = {}
        self.follow: Dict[str, Set[int]] = {}
        self._compute_first()
        self._compute_follow()

    # -- FIRST -----------------------------------------------------------------

    def _compute_first(self) -> None:
        for rule in self.grammar.parser_rules:
            self.first[rule.name] = set()
        changed = True
        while changed:
            changed = False
            for rule in self.grammar.parser_rules:
                acc = set()
                for alt in rule.alternatives:
                    acc |= self._first_of_seq(alt.elements)
                if not acc <= self.first[rule.name]:
                    self.first[rule.name] |= acc
                    changed = True

    def first_of(self, element: ast.Element) -> Set[int]:
        """FIRST set of a single AST element (may include EPSILON_TYPE)."""
        g = self.grammar
        if isinstance(element, (ast.Epsilon, ast.Action, ast.SemanticPredicate,
                                ast.SyntacticPredicate)):
            return {EPSILON_TYPE}
        if isinstance(element, (ast.TokenRef, ast.Literal)):
            return {g.token_type(element)}
        if isinstance(element, ast.NotToken):
            excluded = set()
            for name in element.token_names:
                if name.startswith("'"):
                    excluded.add(g.vocabulary.type_of_literal(name[1:-1]))
                else:
                    excluded.add(g.vocabulary.type_of(name))
            return {t for t in range(1, g.vocabulary.max_type + 1)} - excluded
        if isinstance(element, ast.Wildcard):
            return set(range(1, g.vocabulary.max_type + 1))
        if isinstance(element, ast.RuleRef):
            return set(self.first.get(element.name, set()))
        if isinstance(element, ast.Sequence):
            return self._first_of_seq(element.elements)
        if isinstance(element, ast.Block):
            out: Set[int] = set()
            for alt in element.alternatives:
                out |= self.first_of(alt)
            return out
        if isinstance(element, (ast.Optional_, ast.Star)):
            return self.first_of(element.element) | {EPSILON_TYPE}
        if isinstance(element, ast.Plus):
            return self.first_of(element.element)
        raise TypeError("no FIRST for %r" % element)

    def _first_of_seq(self, elements) -> Set[int]:
        out: Set[int] = set()
        for el in elements:
            f = self.first_of(el)
            out |= f - {EPSILON_TYPE}
            if EPSILON_TYPE not in f:
                return out
        out.add(EPSILON_TYPE)
        return out

    def nullable(self, rule_name: str) -> bool:
        return EPSILON_TYPE in self.first.get(rule_name, set())

    # -- FOLLOW ----------------------------------------------------------------

    def _compute_follow(self) -> None:
        for rule in self.grammar.parser_rules:
            self.follow[rule.name] = set()
        self.follow[self.grammar.start_rule].add(EOF)
        changed = True
        while changed:
            changed = False
            for rule in self.grammar.parser_rules:
                for alt in rule.alternatives:
                    if self._follow_walk(alt.elements, self.follow[rule.name]):
                        changed = True

    def _follow_walk(self, elements, rule_follow: Set[int]) -> bool:
        """Propagate FOLLOW through one element sequence.

        For each rule reference r at position i, FOLLOW(r) gains
        FIRST(rest-of-sequence); if the rest is nullable, it also gains
        the containing rule's FOLLOW.  Loop bodies additionally feed
        their own FIRST back into trailing references (x in ``x*`` can
        be followed by another x).
        """
        changed = False
        for i, el in enumerate(elements):
            rest = elements[i + 1:]
            rest_first = self._first_of_seq(rest)
            after = rest_first - {EPSILON_TYPE}
            full_after = set(after)
            if EPSILON_TYPE in rest_first:
                full_after |= rule_follow
            changed |= self._feed_follow(el, full_after)
        return changed

    def _feed_follow(self, el: ast.Element, after: Set[int]) -> bool:
        changed = False
        if isinstance(el, ast.RuleRef):
            if el.name in self.follow and not after <= self.follow[el.name]:
                self.follow[el.name] |= after
                changed = True
        elif isinstance(el, ast.Sequence):
            changed |= self._follow_walk(el.elements, after)
        elif isinstance(el, ast.Block):
            for alt in el.alternatives:
                changed |= self._feed_follow(alt, after)
        elif isinstance(el, ast.Optional_):
            changed |= self._feed_follow(el.element, after)
        elif isinstance(el, (ast.Star, ast.Plus)):
            body_first = self.first_of(el.element) - {EPSILON_TYPE}
            changed |= self._feed_follow(el.element, after | body_first)
        return changed

    # -- convenience --------------------------------------------------------------

    def resync_set(self, rule_name: str) -> Set[int]:
        """Tokens to consume *up to* when recovering inside ``rule_name``."""
        return self.follow.get(rule_name, set()) | {EOF}

    def describe(self, rule_name: str) -> str:
        v = self.grammar.vocabulary
        firsts = sorted(v.name_of(t) for t in self.first.get(rule_name, ())
                        if t != EPSILON_TYPE)
        follows = sorted(v.name_of(t) for t in self.follow.get(rule_name, ()))
        return "FIRST(%s) = {%s}%s\nFOLLOW(%s) = {%s}" % (
            rule_name, ", ".join(firsts),
            " (nullable)" if self.nullable(rule_name) else "",
            rule_name, ", ".join(follows))


class AtnContinuationSets:
    """Token sets viable *from a specific ATN state*, for error recovery.

    Rule-level FOLLOW is too coarse for ANTLR-style recovery: after a
    mismatch the parser wants to know what can come next *here* — at
    this exact point inside this rule's submachine — not merely what may
    ever follow the rule.  ``continuation(state, rule)`` answers that:
    the FIRST set of every token sequence matchable from ``state`` to
    the rule's stop state, plus whether the stop state is reachable
    without consuming anything (in which case the caller's own
    continuation applies on top).

    Results are memoized per ATN state id; the whole structure is built
    lazily by the parser on the first error, so clean parses never pay
    for it.
    """

    def __init__(self, atn, sets: GrammarSets):
        self.atn = atn
        self.sets = sets
        self._cache: Dict[int, Tuple[FrozenSet[int], bool]] = {}

    def continuation(self, state, rule_name: str) -> Tuple[FrozenSet[int], bool]:
        """``(tokens, reaches_end)`` matchable from ``state`` within
        ``rule_name``'s submachine."""
        cached = self._cache.get(state.id)
        if cached is not None:
            return cached
        from repro.atn.transitions import (
            AtomTransition, RuleTransition, SetTransition,
        )

        stop = self.atn.rule_stop[rule_name]
        tokens: Set[int] = set()
        reaches_end = False
        seen: Set[int] = set()
        work = [state]
        while work:
            s = work.pop()
            if s is stop:
                reaches_end = True
                continue
            if s.id in seen:
                continue
            seen.add(s.id)
            for t in s.transitions:
                if isinstance(t, AtomTransition):
                    tokens.add(t.token_type)
                elif isinstance(t, SetTransition):
                    tokens.update(t.token_set)
                elif isinstance(t, RuleTransition):
                    first = self.sets.first.get(t.rule_name, set())
                    tokens.update(first - {EPSILON_TYPE})
                    if EPSILON_TYPE in first:
                        work.append(t.follow_state)
                else:  # epsilon, predicate, action: free moves
                    work.append(t.target)
        result = (frozenset(tokens), reaches_end)
        self._cache[state.id] = result
        return result

