"""Lookahead-DFA construction: Algorithms 8-11 of the paper.

``DecisionAnalyzer`` runs the modified subset construction for one
decision: ``create_dfa`` (Alg. 8) drives a work list of DFA states, each
the closure (Alg. 9) of the ATN configurations reachable after some
lookahead prefix; ``resolve`` (Alg. 10) detects ambiguous states and
either resolves them with predicates (Alg. 11) or statically in favour of
the lowest-numbered alternative.

Termination safety (Sections 5.3-5.4):

* recursion deeper than ``m`` (``max_recursion_depth``) marks the state
  as overflowed and stops pursuing that configuration;
* recursion discovered in more than one alternative aborts construction
  (``LikelyNonLLRegularError``) — the caller falls back to LL(1);
* a hard cap on DFA states (``max_dfa_states``) defuses the exponential
  "land mine" of classic subset construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.config import ATNConfig, EMPTY_STACK
from repro.analysis.dfa_model import DFA, DFAState
from repro.analysis.diagnostics import AnalysisDiagnostic
from repro.analysis.semctx import SemanticContext, context_for_alt
from repro.atn.states import ATN, RuleStopState
from repro.atn.transitions import (
    ActionTransition,
    AtomTransition,
    EpsilonTransition,
    PredicateTransition,
    RuleTransition,
    SetTransition,
)
from repro.exceptions import AnalysisTimeoutError, LikelyNonLLRegularError


class AnalysisOptions:
    """Tunables for DFA construction.

    ``max_recursion_depth`` is the paper's internal constant *m*: how
    many times closure may re-enter the same rule invocation before
    marking recursion overflow.  Choosing m = k guarantees LL(*) covers
    a strict superset of LL(k); the default 4 mirrors ANTLR's
    conservative setting (the paper's Figure 2 example sets it to 1).
    """

    def __init__(self, max_recursion_depth: int = 4, max_dfa_states: int = 2000,
                 abort_on_multi_alt_recursion: bool = True,
                 max_fixed_lookahead: Optional[int] = None):
        if max_recursion_depth < 1:
            raise ValueError("max_recursion_depth must be >= 1")
        if max_fixed_lookahead is not None and max_fixed_lookahead < 1:
            raise ValueError("max_fixed_lookahead must be >= 1 or None")
        self.max_recursion_depth = max_recursion_depth
        self.max_dfa_states = max_dfa_states
        self.abort_on_multi_alt_recursion = abort_on_multi_alt_recursion
        # The grammar option ``k=N`` / ANTLR's per-decision lookahead cap
        # ("manually set their lookahead parameters", Section 6.1): states
        # deeper than N tokens resolve immediately instead of expanding.
        self.max_fixed_lookahead = max_fixed_lookahead

    def replace(self, **kwargs) -> "AnalysisOptions":
        merged = dict(max_recursion_depth=self.max_recursion_depth,
                      max_dfa_states=self.max_dfa_states,
                      abort_on_multi_alt_recursion=self.abort_on_multi_alt_recursion,
                      max_fixed_lookahead=self.max_fixed_lookahead)
        merged.update(kwargs)
        return AnalysisOptions(**merged)

    def fingerprint(self) -> str:
        """Canonical string over every field that affects analysis output;
        part of the compiled-artifact cache key (:mod:`repro.cache.store`),
        so two option sets with equal fingerprints must produce identical
        DFAs."""
        return "m=%d;states=%d;abort=%s;maxk=%s" % (
            self.max_recursion_depth, self.max_dfa_states,
            self.abort_on_multi_alt_recursion, self.max_fixed_lookahead)

    def __repr__(self):
        return ("AnalysisOptions(m=%d, max_states=%d, abort=%s)"
                % (self.max_recursion_depth, self.max_dfa_states,
                   self.abort_on_multi_alt_recursion))


class DecisionAnalyzer:
    """Builds the lookahead DFA for one decision state of the ATN."""

    #: Process-wide count of analyzer constructions.  The compiled-artifact
    #: cache promises that a warm start never re-analyzes; tests and the
    #: warm-start benchmark assert this counter stays put across a cache hit.
    invocations = 0

    def __init__(self, atn: ATN, decision: int, start_rule: Optional[str] = None,
                 options: Optional[AnalysisOptions] = None):
        DecisionAnalyzer.invocations += 1
        self.atn = atn
        self.info = atn.decisions[decision]
        self.decision = decision
        self.start_rule = start_rule
        self.options = options or AnalysisOptions()
        self.diagnostics: List[AnalysisDiagnostic] = []
        self.dfa = DFA(decision, self.info.rule_name, self.info.num_alternatives)
        #: accept states reachable only via predicate edges, per alt
        self._pred_accepts: Dict[int, DFAState] = {}
        self._states_by_key: Dict[frozenset, DFAState] = {}

    # ------------------------------------------------------------------ Alg. 8

    def create_dfa(self) -> DFA:
        """Algorithm 8 (createDFA): worklist subset construction.

        Falls back to :meth:`create_ll1_dfa` when the decision looks
        non-LL-regular or the state budget is exhausted.
        """
        try:
            return self._create_full_dfa()
        except LikelyNonLLRegularError as e:
            self.diagnostics.append(AnalysisDiagnostic.non_ll_regular(self.decision, e.alts))
            return self.create_ll1_dfa("recursion in alternatives %s" % e.alts)
        except AnalysisTimeoutError as e:
            self.diagnostics.append(AnalysisDiagnostic.state_budget(self.decision, str(e)))
            return self.create_ll1_dfa(str(e))

    def _create_full_dfa(self) -> DFA:
        dfa = self.dfa = DFA(self.decision, self.info.rule_name, self.info.num_alternatives)
        self._pred_accepts = {}
        self._states_by_key = {}

        d0 = dfa.new_state()
        for alt, transition in enumerate(self.info.state.transitions, start=1):
            seed = ATNConfig(transition.target, alt, EMPTY_STACK)
            self._add_closure(d0, seed, collect_preds=True)
        dfa.start = d0
        self._register(d0)
        # Per Algorithm 8, resolve() runs on *successor* states, not D0:
        # conflicting configurations in D0 must flow into the move/closure
        # successors, where one token of context separates e.g. the
        # dangling-else 'else' edge (ambiguous, resolve greedily) from
        # every other FOLLOW token (unambiguous exit).  The exception is
        # recursion overflow in D0 itself: lookahead paths were cut short,
        # so D0 must resolve with predicates/backtracking immediately.
        if d0.overflowed:
            self._resolve(d0)

        work: List[DFAState] = []
        alts0 = {c.alt for c in d0.configs}
        if len(alts0) == 1:
            d0.is_accept = True
            d0.predicted_alt = alts0.pop()
        elif d0.configs:
            work.append(d0)

        depth: Dict[int, int] = {d0.id: 0}
        max_k = self.options.max_fixed_lookahead
        while work:
            d = work.pop(0)
            if max_k is not None and depth.get(d.id, 0) >= max_k:
                self._force_resolve(d)
                continue
            for token_type in self._lookahead_tokens(d):
                moved = self._move(d, token_type)
                if not moved:
                    continue
                candidate = self.dfa.new_state()
                for config in moved:
                    self._add_closure(candidate, config)
                existing = self._states_by_key.get(candidate.config_key())
                if existing is not None and existing is not candidate:
                    self.dfa.states.pop()  # discard the duplicate shell
                    d.edges[token_type] = existing
                    continue
                if len(self.dfa.states) > self.options.max_dfa_states:
                    raise AnalysisTimeoutError(
                        "decision %d exceeded DFA state budget (%d states)"
                        % (self.decision, self.options.max_dfa_states))
                self._register(candidate)
                self._resolve(candidate)
                self._emit_predicate_edges(candidate)
                d.edges[token_type] = candidate
                depth[candidate.id] = depth.get(d.id, 0) + 1
                predicted = {c.alt for c in candidate.configs}
                if len(predicted) == 1:
                    candidate.is_accept = True
                    candidate.predicted_alt = predicted.pop()
                elif candidate.configs:
                    work.append(candidate)
                # else: fully resolved by predicates -> terminal pred state
        return dfa

    def _force_resolve(self, d: DFAState) -> None:
        """Lookahead cap hit: settle this state now (preds or min alt)."""
        alts = {c.alt for c in d.configs}
        if len(alts) <= 1:
            if alts:
                d.is_accept = True
                d.predicted_alt = alts.pop()
            return
        if self._resolve_with_preds(d, alts):
            d.configs = []
            return
        min_alt = min(alts)
        self.diagnostics.append(AnalysisDiagnostic.ambiguity(
            self.decision, sorted(alts), min_alt))
        self.dfa.statically_resolved_alts.update(alts - {min_alt})
        d.configs = []
        d.is_accept = True
        d.predicted_alt = min_alt

    def _register(self, state: DFAState) -> None:
        self._states_by_key[state.config_key()] = state

    # ---------------------------------------------------------------- move

    def _lookahead_tokens(self, d: DFAState) -> List[int]:
        """T_D: token types with consuming transitions out of d's configs."""
        tokens: Set[int] = set()
        for config in d.configs:
            for t in config.state.transitions:
                if isinstance(t, AtomTransition):
                    tokens.add(t.token_type)
                elif isinstance(t, SetTransition):
                    tokens.update(t.token_set)
        return sorted(tokens)

    def _move(self, d: DFAState, token_type: int) -> List[ATNConfig]:
        out: List[ATNConfig] = []
        for config in d.configs:
            for t in config.state.transitions:
                if t.consumes_input and t.matches(token_type):
                    out.append(config.with_state(t.target))
        return out

    # ---------------------------------------------------------------- Alg. 9

    def _add_closure(self, d: DFAState, config: ATNConfig,
                     collect_preds: bool = False) -> None:
        """Algorithm 9 (closure): chase every non-terminal edge.

        Adds all reachable configurations to ``d.configs``; uses the
        per-state busy set to terminate and the recursion-depth guard to
        bound stack growth.

        ``collect_preds`` is True only while building D0: predicates live
        on production left edges (Section 3's formal model), so the ones
        reachable *before any token is consumed* gate the decision; a
        predicate first seen after a move() belongs k tokens into an
        alternative and evaluating it at the decision origin would be
        unsound, so successor-state closure ignores it (the parser
        enforces user predicates when it actually reaches them).
        """
        key = config.key()
        if key in d.busy:
            return
        d.busy.add(key)
        d.configs.append(config)

        state = config.state
        if isinstance(state, RuleStopState):
            self._closure_at_stop(d, config, collect_preds)
            return
        for t in state.transitions:
            if isinstance(t, RuleTransition):
                depth = sum(1 for s in config.stack if s is t.follow_state)
                if depth == 1:
                    d.recursive_alts.add(config.alt)
                    if (len(d.recursive_alts) > 1
                            and self.options.abort_on_multi_alt_recursion):
                        raise LikelyNonLLRegularError(self.decision, d.recursive_alts)
                if depth >= self.options.max_recursion_depth:
                    d.overflowed = True
                    self.dfa.had_overflow = True
                    return  # stop pursuing paths from this configuration
                self._add_closure(d, config.push(t.target, t.follow_state),
                                  collect_preds)
            elif isinstance(t, PredicateTransition):
                nxt = (config.adding_pred(t.predicate) if collect_preds else config)
                self._add_closure(d, nxt.with_state(t.target), collect_preds)
            elif isinstance(t, (EpsilonTransition, ActionTransition)):
                self._add_closure(d, config.with_state(t.target), collect_preds)
            # Atom/Set transitions are move's job, not closure's.

    def _closure_at_stop(self, d: DFAState, config: ATNConfig,
                         collect_preds: bool) -> None:
        """Stop-state closure: pop, or chase all call sites on empty stack."""
        if config.stack:
            self._add_closure(d, config.pop(), collect_preds)
            return
        rule = config.state.rule_name
        sites = self.atn.call_sites.get(rule, [])
        for t in sites:
            self._add_closure(d, config.with_empty_stack_at(t.follow_state),
                              collect_preds)
        if not sites or rule == self.start_rule:
            # Lookahead may run off the end of the grammar: match EOF.
            self._add_closure(d, config.with_empty_stack_at(self.atn.eof_state),
                              collect_preds)

    # ---------------------------------------------------------------- Alg. 10

    def _resolve(self, d: DFAState) -> None:
        """Algorithm 10 (resolve): detect and fix ambiguous DFA states."""
        conflicts = self._conflict_set(d)
        if not conflicts and not d.overflowed:
            return
        target_alts = conflicts if conflicts else {c.alt for c in d.configs}
        if len(target_alts) > 1 and self._resolve_with_preds(d, target_alts):
            return
        if len(target_alts) <= 1:
            return  # overflow with a single alt left: nothing to disambiguate
        min_alt = min(target_alts)
        removed = {a for a in target_alts if a != min_alt}
        d.configs = [c for c in d.configs if c.alt not in removed]
        self.dfa.statically_resolved_alts.update(removed)
        if d.overflowed:
            self.diagnostics.append(AnalysisDiagnostic.overflow(
                self.decision, sorted(target_alts), min_alt))
        else:
            self.diagnostics.append(AnalysisDiagnostic.ambiguity(
                self.decision, sorted(target_alts), min_alt))

    def _conflict_set(self, d: DFAState) -> Set[int]:
        """Definition 7: alts involved in same-state, equivalent-stack clashes."""
        conflicts: Set[int] = set()
        by_state: Dict[int, List[ATNConfig]] = {}
        for c in d.configs:
            by_state.setdefault(c.state.id, []).append(c)
        for configs in by_state.values():
            if len(configs) < 2:
                continue
            for i, c1 in enumerate(configs):
                for c2 in configs[i + 1:]:
                    if c1.conflicts_with(c2):
                        conflicts.add(c1.alt)
                        conflicts.add(c2.alt)
        return conflicts

    # ---------------------------------------------------------------- Alg. 11

    def _resolve_with_preds(self, d: DFAState, conflict_alts: Set[int]) -> bool:
        """Algorithm 11 (resolveWithPreds) with hoisting and a default edge.

        Each conflicting alternative's gate is the hoisted semantic
        context of *all* its configurations (Section 5.5): OR over
        configurations, AND within one configuration's collected
        predicates.  An alternative with an unpredicated path cannot be
        gated; only the highest-numbered conflicting alternative may be
        ungated, in which case it becomes the default edge (ordered
        choice falls through to it, as PEG mode requires).
        """
        contexts: Dict[int, SemanticContext] = {}
        for alt in sorted(conflict_alts):
            ctx = context_for_alt([c for c in d.configs if c.alt == alt])
            if ctx is not None:
                contexts[alt] = ctx
        ungated = [a for a in sorted(conflict_alts) if a not in contexts]
        if ungated and ungated != [max(conflict_alts)]:
            return False
        for c in d.configs:
            if c.alt in conflict_alts:
                c.resolved = True
        d.predicate_edges = [(contexts.get(alt), alt, self._pred_accept(alt))
                             for alt in sorted(conflict_alts)]
        d.configs = [c for c in d.configs if c.alt not in conflict_alts]
        return True

    def _pred_accept(self, alt: int) -> DFAState:
        acc = self._pred_accepts.get(alt)
        if acc is None:
            acc = self.dfa.new_state()
            acc.is_accept = True
            acc.predicted_alt = alt
            self._pred_accepts[alt] = acc
        return acc

    def _emit_predicate_edges(self, d: DFAState) -> None:
        """Predicate edges were attached during resolve; nothing more to
        do, but kept as an explicit hook mirroring Algorithm 8's final
        foreach over resolved configurations."""

    # ---------------------------------------------------------------- fallback

    def create_ll1_dfa(self, reason: str) -> DFA:
        """LL(1) fallback (Section 5.4).

        One token of lookahead: closure of the decision's left edges with
        the multi-alt-recursion abort disabled, then a single layer of
        move edges.  Tokens predicting several alternatives resolve with
        predicates (synpreds -> backtracking) or statically by order.
        """
        dfa = self.dfa = DFA(self.decision, self.info.rule_name, self.info.num_alternatives)
        dfa.fell_back_to_ll1 = True
        dfa.gave_up_reason = reason
        self._pred_accepts = {}

        relaxed = self.options.replace(abort_on_multi_alt_recursion=False,
                                       max_recursion_depth=1)
        saved = self.options
        self.options = relaxed
        try:
            d0 = dfa.new_state()
            for alt, transition in enumerate(self.info.state.transitions, start=1):
                self._add_closure(d0, ATNConfig(transition.target, alt, EMPTY_STACK),
                                  collect_preds=True)
            dfa.start = d0
            accepts: Dict[int, DFAState] = {}
            for token_type in self._lookahead_tokens(d0):
                moved = self._move(d0, token_type)
                alts = sorted({c.alt for c in moved})
                if len(alts) == 1:
                    alt = alts[0]
                    if alt not in accepts:
                        acc = dfa.new_state()
                        acc.is_accept = True
                        acc.predicted_alt = alt
                        accepts[alt] = acc
                    d0.edges[token_type] = accepts[alt]
                    continue
                # Conflicting token: build an intermediate state and resolve.
                mid = dfa.new_state()
                mid.configs = moved
                if not self._resolve_with_preds(mid, set(alts)):
                    min_alt = min(alts)
                    self.diagnostics.append(AnalysisDiagnostic.ambiguity(
                        self.decision, alts, min_alt))
                    mid.is_accept = True
                    mid.predicted_alt = min_alt
                mid.configs = []
                d0.edges[token_type] = mid
        finally:
            self.options = saved
        return dfa
