"""High-level convenience API: grammar text in, parser out.

:func:`compile_grammar` runs the full pipeline — meta-parse, validate,
left-recursion rewrite, LL(*) analysis, lexer build — and returns a
:class:`ParserHost` that parses strings (through the generated lexer) or
pre-made token streams.

``cache_dir`` enables the compiled-artifact cache (:mod:`repro.cache`):
the first compile of a grammar serializes its DFAs and lexer tables, and
subsequent compiles warm-start from disk, skipping static analysis
entirely.  ``parallel`` spreads a cold compile's per-decision analysis
over N threads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.construction import AnalysisOptions
from repro.analysis.decisions import AnalysisResult, analyze
from repro.exceptions import GrammarError
from repro.grammar.leftrec import eliminate_left_recursion
from repro.grammar.meta_parser import parse_grammar
from repro.grammar.model import Grammar
from repro.grammar.validation import validate_grammar
from repro.lexgen.builder import build_lexer
from repro.runtime.parser import LLStarParser, ParserOptions
from repro.runtime.token import Token
from repro.runtime.token_stream import ListTokenStream


class ParserHost:
    """A compiled grammar ready to parse input.

    Wraps the analysis result and (when the grammar has lexer rules) the
    generated tokenizer.  One host serves many parses; each ``parse``
    call creates a fresh :class:`LLStarParser`.
    """

    #: True when this host was warm-started from the compiled-artifact
    #: cache instead of running static analysis (see :mod:`repro.cache`).
    from_cache = False
    #: Cache-health events from the store that served this compile
    #: (:class:`~repro.cache.CacheDiagnostic`); empty for uncached compiles.
    cache_diagnostics = ()
    #: The live :class:`~repro.cache.binary.MappedArtifact` whose mmap
    #: backs this host's flat tables (zero-copy warm start), or None when
    #: the tables own their storage.  Held so the mapping outlives every
    #: memoryview row sliced from it.
    mapped_artifact = None

    def __init__(self, grammar: Grammar, analysis: AnalysisResult, lexer_spec=None):
        self.grammar = grammar
        self.analysis = analysis
        self.lexer_spec = lexer_spec

    @property
    def degraded_decisions(self) -> List[int]:
        """Decisions whose cached DFA was unusable; each will be rebuilt
        on first use by the parser (graceful degradation, not failure)."""
        return [r.decision for r in self.analysis.records
                if getattr(r, "degraded", False)]

    # -- input preparation -------------------------------------------------------

    def tokenize(self, text: str) -> ListTokenStream:
        if self.lexer_spec is None:
            raise GrammarError(
                "grammar %s has no lexer rules; pass tokens explicitly"
                % self.grammar.name)
        return ListTokenStream(self.lexer_spec.tokenizer(text), source=text)

    def token_stream_from_types(self, names: Sequence[str]) -> ListTokenStream:
        """Build a stream from token-name strings (testing convenience).

        Quoted names (``"'int'"``) resolve as literals, bare names as
        token types.  Any name the grammar's vocabulary does not define —
        including malformed literals like ``"'int"`` or non-string
        entries — raises :class:`GrammarError` naming the offender.
        """
        tokens: List[Token] = []
        for name in names:
            if not isinstance(name, str):
                raise GrammarError(
                    "token names must be strings, got %r (grammar %s)"
                    % (name, self.grammar.name))
            if name.startswith("'") and name.endswith("'") and len(name) >= 2:
                t = self.grammar.vocabulary.type_of_literal(name[1:-1])
            else:
                t = self.grammar.vocabulary.type_of(name)
            if t is None:
                raise GrammarError("unknown token %s in grammar %s"
                                   % (name, self.grammar.name))
            tokens.append(Token(t, name.strip("'")))
        return ListTokenStream(tokens)

    # -- parsing ---------------------------------------------------------------------

    def parser(self, source, options: Optional[ParserOptions] = None) -> LLStarParser:
        """Build a parser over ``source``: str, token stream, or token list."""
        if isinstance(source, str):
            stream = self.tokenize(source)
        elif isinstance(source, ListTokenStream):
            stream = source
        else:
            stream = ListTokenStream(source)
        return LLStarParser(self.analysis, stream, options)

    def parse(self, source, rule_name: Optional[str] = None,
              options: Optional[ParserOptions] = None, require_eof: bool = True):
        return self.parser(source, options).parse(rule_name, require_eof=require_eof)

    def recognize(self, source, rule_name: Optional[str] = None,
                  options: Optional[ParserOptions] = None) -> bool:
        return self.parser(source, options).recognize(rule_name)

    def __repr__(self):
        return "ParserHost(%s)" % self.grammar.name


def _prepare_grammar(source, name: Optional[str],
                     rewrite_left_recursion: bool, strict: bool):
    """Shared front half of cold and warm compiles: parse, rewrite,
    validate.  Returns ``(grammar, issues)``."""
    if isinstance(source, Grammar):
        grammar = source
    else:
        grammar = parse_grammar(source, name=name)
    if rewrite_left_recursion:
        eliminate_left_recursion(grammar)
    issues = validate_grammar(grammar)
    errors = [i for i in issues if i.is_error]
    if strict and errors:
        raise GrammarError("; ".join(str(e) for e in errors))
    return grammar, issues


def _wants_lexer(grammar: Grammar) -> bool:
    return bool(grammar.lexer_rules
                and (any(not r.is_fragment for r in grammar.lexer_rules)
                     or grammar.vocabulary.literals()))


def _host_from_payload(payload: dict, source: str, name: Optional[str],
                       options: Optional[AnalysisOptions],
                       rewrite_left_recursion: bool,
                       strict: bool, trusted: bool = False) -> ParserHost:
    """Warm start: rebuild grammar + ATN, attach cached DFAs and lexer.

    Raises on any payload/grammar inconsistency; the caller evicts the
    entry and falls back to a cold compile.  ``trusted`` marks a payload
    whose bytes carry their own integrity check (the checksummed mmap
    image): structural table validation is skipped and array rows may be
    zero-copy ``memoryview`` slices of the mapping.
    """
    from repro.cache import analysis_from_artifact, grammar_fingerprint
    from repro.cache import lexer_from_artifact

    if payload.get("grammar_hash") != grammar_fingerprint(source, name):
        raise ValueError("cache entry was built from different grammar text")
    grammar, issues = _prepare_grammar(source, name, rewrite_left_recursion, strict)
    if _wants_lexer(grammar) != (payload.get("lexer") is not None):
        raise ValueError("cache entry lexer presence does not match grammar")
    analysis = analysis_from_artifact(grammar, payload, options, trusted=trusted)
    lexer_spec = lexer_from_artifact(grammar, payload, trusted=trusted)
    host = ParserHost(grammar, analysis, lexer_spec)
    host.validation_issues = issues
    host.from_cache = True
    return host


def host_from_artifact(payload: dict, source: str, name: Optional[str] = None,
                       options: Optional[AnalysisOptions] = None,
                       rewrite_left_recursion: bool = True,
                       strict: bool = True) -> ParserHost:
    """Warm-start a :class:`ParserHost` from an in-memory artifact payload
    (the dict :func:`repro.cache.artifact_to_dict` builds) without
    touching disk or re-running :class:`DecisionAnalyzer`.

    This is how :mod:`repro.batch` pool workers boot: the parent process
    compiles (or cache-loads) the grammar once, ships the serialized
    payload to each worker's initializer, and every worker rebuilds the
    identical execution tables from it.  Raises on any payload/grammar
    inconsistency — an in-memory payload, unlike an on-disk cache entry,
    has no cold-compile fallback to hide behind.
    """
    return _host_from_payload(payload, source, name, options,
                              rewrite_left_recursion, strict)


def host_from_cache_key(cache_dir: str, key: str,
                        name: Optional[str] = None,
                        options: Optional[AnalysisOptions] = None,
                        rewrite_left_recursion: bool = True,
                        strict: bool = True,
                        telemetry=None) -> ParserHost:
    """Warm-start a :class:`ParserHost` from a cache key alone.

    The binary ``.llt`` sidecar for ``key`` carries the grammar text, so
    a process that knows only ``(cache_dir, key)`` — a batch pool worker
    — can boot without being shipped the source or the payload: it maps
    the file (sharing one page-cache copy with every sibling) and
    rebuilds its tables zero-copy.

    Raises :class:`~repro.exceptions.ArtifactFormatError` when the
    sidecar is missing, damaged, or was written without the grammar
    source; callers with the grammar text fall back to
    :func:`compile_grammar`.
    """
    from repro.cache import ArtifactStore
    from repro.exceptions import ArtifactFormatError

    store = ArtifactStore(cache_dir, telemetry=telemetry,
                          sweep_orphans=False)
    mapped = store.load_mapped(key)
    if mapped is None:
        raise ArtifactFormatError("no usable mmap artifact for key %s"
                                  % key[:16])
    if mapped.grammar_source is None:
        mapped.close()
        raise ArtifactFormatError(
            "mmap artifact for key %s carries no grammar source" % key[:16])
    try:
        host = _host_from_payload(mapped.payload, mapped.grammar_source,
                                  name, options, rewrite_left_recursion,
                                  strict, trusted=True)
    except GrammarError:
        mapped.close()
        raise
    except Exception as e:
        mapped.close()
        raise ArtifactFormatError(
            "mmap artifact for key %s rejected: %s" % (key[:16], e))
    host.mapped_artifact = mapped
    host.cache_diagnostics = store.diagnostics
    return host


def _finish_cached_host(host: ParserHost, store) -> ParserHost:
    """Common tail of every successful warm start."""
    host.cache_diagnostics = store.diagnostics
    degraded = host.degraded_decisions
    if degraded:
        import warnings

        warnings.warn(
            "cache entry for grammar %s partially corrupt: "
            "decision(s) %s will be re-analyzed on first use"
            % (host.grammar.name, degraded))
    return host


def compile_grammar(source, name: Optional[str] = None,
                    options: Optional[AnalysisOptions] = None,
                    rewrite_left_recursion: bool = True,
                    strict: bool = True,
                    cache_dir: Optional[str] = None,
                    parallel: Optional[int] = None,
                    telemetry=None) -> ParserHost:
    """Full pipeline: text or Grammar -> ready-to-parse :class:`ParserHost`.

    ``strict`` raises on validation *errors* (left recursion that the
    rewrite could not remove, undefined rules, nullable loops); warnings
    are kept on ``host.analysis`` regardless.

    ``cache_dir`` names a compiled-artifact cache directory
    (:mod:`repro.cache`): a warm hit skips static analysis entirely and
    the returned host has ``from_cache = True``.  Only grammar *text* is
    cacheable — a pre-built :class:`Grammar` object has no stable content
    hash, so ``cache_dir`` is ignored for it.  ``parallel=N`` runs a cold
    compile's per-decision analysis on N threads.

    ``telemetry`` (a :class:`~repro.runtime.telemetry.ParseTelemetry`)
    observes the compile: a span per compile plus cache
    hit/miss/save/evict events when ``cache_dir`` is set.  The same
    object can then be attached to ``ParserOptions`` so compile-time and
    parse-time metrics land in one registry.
    """
    if telemetry is not None:
        with telemetry.span("compile:%s" % (name or "grammar")):
            return _compile_grammar_impl(source, name, options,
                                         rewrite_left_recursion, strict,
                                         cache_dir, parallel, telemetry)
    return _compile_grammar_impl(source, name, options,
                                 rewrite_left_recursion, strict,
                                 cache_dir, parallel, telemetry)


def _compile_grammar_impl(source, name, options, rewrite_left_recursion,
                          strict, cache_dir, parallel, telemetry) -> ParserHost:
    if cache_dir is not None and not isinstance(source, Grammar):
        from repro.cache import ArtifactStore, CacheDiagnostic, artifact_key
        from repro.cache import artifact_to_dict, grammar_fingerprint
        from repro.exceptions import ArtifactFormatError

        store = ArtifactStore(cache_dir, telemetry=telemetry)
        key = artifact_key(source, name, options, rewrite_left_recursion)

        # Fast path: mmap the binary sidecar — zero-copy tables, no JSON
        # parse, no structural validation (the image is checksummed).
        mapped = store.load_mapped(key)
        if mapped is not None:
            try:
                host = _host_from_payload(mapped.payload, source, name,
                                          options, rewrite_left_recursion,
                                          strict, trusted=True)
            except GrammarError:
                mapped.close()
                raise  # the grammar itself is bad; not a cache problem
            except Exception as e:
                mapped.close()
                kind = (CacheDiagnostic.CORRUPT
                        if isinstance(e, ArtifactFormatError)
                        else CacheDiagnostic.STALE)
                store.note(kind, key,
                           "mmap entry rejected (%s); evicted" % e)
                store.evict(key)  # both files: recompile below
            else:
                host.mapped_artifact = mapped
                return _finish_cached_host(host, store)

        payload = store.load(key)
        if payload is not None:
            try:
                host = _host_from_payload(payload, source, name, options,
                                          rewrite_left_recursion, strict)
            except GrammarError:
                raise  # the grammar itself is bad; not a cache problem
            except Exception as e:
                kind = (CacheDiagnostic.CORRUPT
                        if isinstance(e, ArtifactFormatError)
                        else CacheDiagnostic.STALE)
                store.note(kind, key, "entry rejected (%s); evicted" % e)
                store.evict(key)  # stale/corrupt entry: recompile below
            else:
                # The JSON entry was good but no sidecar mapped above:
                # regenerate it so the *next* start takes the fast path.
                store.save_sidecar(key, payload, source)
                return _finish_cached_host(host, store)
        host = compile_grammar(source, name=name, options=options,
                               rewrite_left_recursion=rewrite_left_recursion,
                               strict=strict, parallel=parallel)
        store.save(key, artifact_to_dict(host.grammar, host.analysis,
                                         host.lexer_spec,
                                         grammar_fingerprint(source, name)),
                   source=source)
        host.cache_diagnostics = store.diagnostics
        return host

    grammar, issues = _prepare_grammar(source, name, rewrite_left_recursion, strict)
    analysis = analyze(grammar, options, parallel=parallel)
    lexer_spec = build_lexer(grammar) if _wants_lexer(grammar) else None
    host = ParserHost(grammar, analysis, lexer_spec)
    host.validation_issues = issues
    host.from_cache = False
    return host
