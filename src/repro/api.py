"""High-level convenience API: grammar text in, parser out.

:func:`compile_grammar` runs the full pipeline — meta-parse, validate,
left-recursion rewrite, LL(*) analysis, lexer build — and returns a
:class:`ParserHost` that parses strings (through the generated lexer) or
pre-made token streams.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.construction import AnalysisOptions
from repro.analysis.decisions import AnalysisResult, analyze
from repro.exceptions import GrammarError
from repro.grammar.leftrec import eliminate_left_recursion
from repro.grammar.meta_parser import parse_grammar
from repro.grammar.model import Grammar
from repro.grammar.validation import validate_grammar
from repro.lexgen.builder import build_lexer
from repro.runtime.parser import LLStarParser, ParserOptions
from repro.runtime.token import Token
from repro.runtime.token_stream import ListTokenStream


class ParserHost:
    """A compiled grammar ready to parse input.

    Wraps the analysis result and (when the grammar has lexer rules) the
    generated tokenizer.  One host serves many parses; each ``parse``
    call creates a fresh :class:`LLStarParser`.
    """

    def __init__(self, grammar: Grammar, analysis: AnalysisResult, lexer_spec=None):
        self.grammar = grammar
        self.analysis = analysis
        self.lexer_spec = lexer_spec

    # -- input preparation -------------------------------------------------------

    def tokenize(self, text: str) -> ListTokenStream:
        if self.lexer_spec is None:
            raise GrammarError(
                "grammar %s has no lexer rules; pass tokens explicitly"
                % self.grammar.name)
        return ListTokenStream(self.lexer_spec.tokenizer(text))

    def token_stream_from_types(self, names: Sequence[str]) -> ListTokenStream:
        """Build a stream from token-name strings (testing convenience).

        Quoted names (``"'int'"``) resolve as literals, bare names as
        token types.
        """
        tokens: List[Token] = []
        for name in names:
            if name.startswith("'"):
                t = self.grammar.vocabulary.type_of_literal(name[1:-1])
            else:
                t = self.grammar.vocabulary.type_of(name)
            if t is None:
                raise GrammarError("unknown token %s" % name)
            tokens.append(Token(t, name.strip("'")))
        return ListTokenStream(tokens)

    # -- parsing ---------------------------------------------------------------------

    def parser(self, source, options: Optional[ParserOptions] = None) -> LLStarParser:
        """Build a parser over ``source``: str, token stream, or token list."""
        if isinstance(source, str):
            stream = self.tokenize(source)
        elif isinstance(source, ListTokenStream):
            stream = source
        else:
            stream = ListTokenStream(source)
        return LLStarParser(self.analysis, stream, options)

    def parse(self, source, rule_name: Optional[str] = None,
              options: Optional[ParserOptions] = None, require_eof: bool = True):
        return self.parser(source, options).parse(rule_name, require_eof=require_eof)

    def recognize(self, source, rule_name: Optional[str] = None,
                  options: Optional[ParserOptions] = None) -> bool:
        return self.parser(source, options).recognize(rule_name)

    def __repr__(self):
        return "ParserHost(%s)" % self.grammar.name


def compile_grammar(source, name: Optional[str] = None,
                    options: Optional[AnalysisOptions] = None,
                    rewrite_left_recursion: bool = True,
                    strict: bool = True) -> ParserHost:
    """Full pipeline: text or Grammar -> ready-to-parse :class:`ParserHost`.

    ``strict`` raises on validation *errors* (left recursion that the
    rewrite could not remove, undefined rules, nullable loops); warnings
    are kept on ``host.analysis`` regardless.
    """
    if isinstance(source, Grammar):
        grammar = source
    else:
        grammar = parse_grammar(source, name=name)
    if rewrite_left_recursion:
        eliminate_left_recursion(grammar)
    issues = validate_grammar(grammar)
    errors = [i for i in issues if i.is_error]
    if strict and errors:
        raise GrammarError("; ".join(str(e) for e in errors))
    analysis = analyze(grammar, options)
    lexer_spec = None
    if any(not r.is_fragment for r in grammar.lexer_rules) or grammar.vocabulary.literals():
        if grammar.lexer_rules:
            lexer_spec = build_lexer(grammar)
    host = ParserHost(grammar, analysis, lexer_spec)
    host.validation_issues = issues
    return host
