"""``llstar serve``: a fault-tolerant long-lived parse service.

The paper's analysis bounds (Section 5.3) make a single parse safe; this
package makes a *population* of parses safe to operate: admission
control and load shedding keep latency flat under saturation, a
per-grammar circuit breaker fails fast while a grammar keeps crashing
workers or blowing budgets, and pool death degrades to inline parsing
instead of an outage.  See ``RUNBOOK.md`` for the operator's view.
"""

from repro.serve.admission import AdmissionController
from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_CODES,
    CircuitBreaker,
)
from repro.serve.errors import (
    BadRequestError,
    CircuitOpenError,
    DrainingError,
    GrammarLoadError,
    RequestTooLargeError,
    ServeError,
    ServiceUnavailableError,
    SheddingError,
    UnknownGrammarError,
)
from repro.serve.http import HttpServer, serve_http
from repro.serve.registry import GrammarRegistry
from repro.serve.service import (
    ParseRequest,
    ParseService,
    Response,
    ServiceConfig,
)
from repro.serve.stdio import handle_line, serve_stdio
from repro.serve.worker import ParseTask, execute_parse, serve_parse

__all__ = [
    "AdmissionController",
    "BadRequestError",
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpenError",
    "DrainingError",
    "GrammarLoadError",
    "GrammarRegistry",
    "HALF_OPEN",
    "HttpServer",
    "OPEN",
    "ParseRequest",
    "ParseService",
    "ParseTask",
    "RequestTooLargeError",
    "Response",
    "STATE_CODES",
    "ServeError",
    "ServiceConfig",
    "ServiceUnavailableError",
    "SheddingError",
    "UnknownGrammarError",
    "execute_parse",
    "handle_line",
    "serve_http",
    "serve_parse",
    "serve_stdio",
]
