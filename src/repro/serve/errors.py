"""Typed service-level errors with HTTP status semantics.

Every way a request can fail without being a parse result has a typed
error here, each carrying the HTTP ``status`` it maps to and (for the
backpressure family) a ``retry_after`` hint.  The transport layer turns
any :class:`ServeError` into a well-formed JSON error response — the
chaos suite's core invariant is that *no* request path ever produces an
unhandled 500 or a hang, only these.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import LLStarError


class ServeError(LLStarError):
    """Base class for service-level failures (not parse outcomes)."""

    status = 500
    error_type = "ServeError"

    def __init__(self, message: str, retry_after: Optional[float] = None):
        self.retry_after = retry_after
        super().__init__(message)

    def to_body(self) -> dict:
        body = {"ok": False, "error_type": type(self).__name__,
                "error": str(self)}
        if self.retry_after is not None:
            body["retry_after"] = round(self.retry_after, 3)
        return body


class BadRequestError(ServeError):
    """The request itself was malformed (bad JSON, missing fields,
    wrong types, unsupported method/route semantics)."""

    status = 400


class UnknownGrammarError(ServeError):
    """The request named a grammar the registry does not know."""

    status = 404


class RequestTooLargeError(ServeError):
    """The request body exceeded the configured byte ceiling."""

    status = 413


class GrammarLoadError(ServeError):
    """A registered grammar failed to compile or load from the artifact
    cache.  Deterministic (the grammar text is bad), so the registry
    caches the failure and the breaker is *not* charged."""

    status = 422


class SheddingError(ServeError):
    """Admission control refused the request: the bounded queue is full.

    Maps to 429 with ``Retry-After`` — the client did nothing wrong,
    the service is protecting its latency."""

    status = 429


class DrainingError(ServeError):
    """The service is draining (SIGTERM received): no new work accepted,
    in-flight requests are being finished."""

    status = 503


class CircuitOpenError(ServeError):
    """The target grammar's circuit breaker is open: recent requests
    against it kept crashing workers or blowing budgets, so the service
    fails fast instead of queueing more doomed work."""

    status = 503


class ServiceUnavailableError(ServeError):
    """A request was lost to infrastructure failure (worker crash with
    no retry left, executor shutdown race)."""

    status = 503
