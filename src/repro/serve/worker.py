"""Parse execution shared by pool workers and the inline fallback.

One request travels as a picklable :class:`ParseTask`; the outcome comes
back as a plain dict (picklable, transport-agnostic).  Pool workers keep
a per-process host cache keyed by grammar fingerprint and warm-start
from the artifact-cache directory the parent already populated — a
worker never runs static analysis for a grammar the parent compiled.

:func:`execute_parse` is the single code path for both execution modes,
so degradation to inline parsing changes *where* a request runs, never
*what* it returns.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from repro.exceptions import LLStarError, WorkerCrashError
from repro.runtime.budget import ParserBudget


class ParseTask:
    """Everything one parse request needs, in picklable form."""

    __slots__ = ("request_id", "grammar_text", "name", "cache_dir",
                 "options", "rule_name", "recover", "budget", "text",
                 "want_tree", "use_tables", "chaos")

    def __init__(self, request_id: str, grammar_text: str,
                 name: Optional[str], cache_dir: Optional[str],
                 text: str, rule_name: Optional[str] = None,
                 recover: bool = True,
                 budget: Optional[ParserBudget] = None,
                 want_tree: bool = False, use_tables: bool = True,
                 options=None, chaos=None):
        self.request_id = request_id
        self.grammar_text = grammar_text
        self.name = name
        self.cache_dir = cache_dir
        self.options = options
        self.rule_name = rule_name
        self.recover = recover
        self.budget = budget
        self.text = text
        self.want_tree = want_tree
        self.use_tables = use_tables
        self.chaos = chaos


#: Per-worker-process compiled hosts, keyed by grammar fingerprint.
_HOSTS: Dict[str, object] = {}


def _host_for(task: ParseTask):
    from repro.api import compile_grammar
    from repro.cache import grammar_fingerprint

    key = grammar_fingerprint(task.grammar_text, task.name)
    host = _HOSTS.get(key)
    if host is None:
        # With a cache_dir this is a warm start from the artifact the
        # parent's registry compile persisted; without one it is a cold
        # compile, paid once per (grammar, worker process).
        host = compile_grammar(task.grammar_text, name=task.name,
                               options=task.options,
                               cache_dir=task.cache_dir)
        _HOSTS[key] = host
    return host


def execute_parse(task: ParseTask, host=None, telemetry=None,
                  profiler=None, in_worker: bool = False) -> dict:
    """Run one parse task to a plain-dict outcome; never raises for
    input- or budget-level failures (they come back typed in the dict).
    """
    from repro.runtime.parser import ParserOptions

    started = time.perf_counter()
    outcome = {"ok": False, "error_type": None, "error": None,
               "syntax_errors": [], "tokens": 0, "elapsed": 0.0,
               "worker_pid": os.getpid(), "tree": None}
    if task.chaos is not None:
        from repro.runtime.chaos import KILL

        # In a pool worker a KILL fault hard-exits the process here;
        # inline it surfaces as a typed WorkerCrashError outcome so the
        # breaker still sees the crash without losing the service.
        fault = task.chaos.apply_before_parse(task.request_id,
                                              in_worker=in_worker)
        if fault == KILL:
            outcome["error_type"] = WorkerCrashError.__name__
            outcome["error"] = ("injected worker-kill fault on request %s"
                                % task.request_id)
            outcome["elapsed"] = time.perf_counter() - started
            return outcome
    try:
        if host is None:
            host = _host_for(task)
        stream = host.tokenize(task.text)
        outcome["tokens"] = max(0, len(stream.tokens()) - 1)  # minus EOF
        parser = host.parser(stream, options=ParserOptions(
            recover=task.recover, budget=task.budget, telemetry=telemetry,
            profiler=profiler, use_tables=task.use_tables,
            build_tree=task.want_tree))
        tree = parser.parse(task.rule_name)
        outcome["syntax_errors"] = [
            "%s: %s" % (e.position, e) for e in parser.errors]
        outcome["ok"] = not parser.errors
        if task.want_tree and tree is not None and not parser.errors:
            outcome["tree"] = tree.to_sexpr()
    except (LLStarError, RecursionError) as e:
        outcome["error_type"] = type(e).__name__
        outcome["error"] = str(e) or type(e).__name__
    outcome["elapsed"] = time.perf_counter() - started
    return outcome


def serve_parse(task: ParseTask) -> dict:
    """Top-level (picklable) pool entry point: warm host + execute."""
    return execute_parse(task, in_worker=True)
