"""JSON-lines stdio transport: the same service without a socket.

Each input line is one JSON request document; each output line is one
JSON response envelope ``{"status": <http-ish code>, "body": {...}}``.
The document's optional ``"op"`` field selects the route (``parse`` —
the default — ``health``, ``ready``, ``metrics``, ``grammars``); parse
documents carry the same fields as ``POST /parse``.

:func:`handle_line` is the whole protocol and is directly unit-testable
without pipes or subprocesses; :func:`serve_stdio` is the thin loop
``llstar serve --stdio`` runs, reading stdin to EOF and then draining.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Optional, TextIO

from repro.serve.service import ParseService

#: op -> (method, path) for non-parse routes.
_OPS = {
    "health": ("GET", "/healthz"),
    "ready": ("GET", "/readyz"),
    "metrics": ("GET", "/metrics"),
    "grammars": ("GET", "/grammars"),
}


async def handle_line(service: ParseService, line: str) -> Optional[str]:
    """One request line -> one JSON response line (None for blank input).

    Never raises: malformed lines come back as status-400 envelopes, the
    same guarantee the HTTP transport gives.
    """
    line = line.strip()
    if not line:
        return None
    try:
        doc = json.loads(line)
        if not isinstance(doc, dict):
            raise ValueError("request line must be a JSON object")
    except ValueError as e:
        return json.dumps({"status": 400, "body": {
            "ok": False, "error_type": "BadRequestError",
            "error": "malformed request line: %s" % e}}, sort_keys=True)
    op = doc.pop("op", "parse")
    if op in _OPS:
        method, path = _OPS[op]
        response = await service.handle(method, path)
    elif op == "parse":
        body = json.dumps(doc).encode("utf-8")
        response = await service.handle("POST", "/parse", body)
    else:
        return json.dumps({"status": 400, "body": {
            "ok": False, "error_type": "BadRequestError",
            "error": "unknown op %r (expected parse/health/ready/"
                     "metrics/grammars)" % op}}, sort_keys=True)
    envelope = {"status": response.status,
                "body": (response.body if isinstance(response.body, dict)
                         else {"text": str(response.body)})}
    if response.retry_after is not None:
        envelope["retry_after"] = response.retry_after
    return json.dumps(envelope, sort_keys=True)


async def serve_stdio(service: ParseService,
                      input_stream: Optional[TextIO] = None,
                      output_stream: Optional[TextIO] = None) -> int:
    """Read request lines until EOF; returns the number served.

    stdin is read through the default executor so a quiet terminal never
    blocks the event loop (metrics/health ops stay responsive when this
    transport is combined with the HTTP one).
    """
    stdin = input_stream if input_stream is not None else sys.stdin
    stdout = output_stream if output_stream is not None else sys.stdout
    loop = asyncio.get_running_loop()
    served = 0
    while True:
        line = await loop.run_in_executor(None, stdin.readline)
        if not line:
            break
        reply = await handle_line(service, line)
        if reply is None:
            continue
        stdout.write(reply + "\n")
        stdout.flush()
        served += 1
    await service.drain()
    return served
