"""Multi-grammar registry: lazy, single-flight, capacity-bounded.

Grammar *sources* are registered cheaply (name -> text).  Compiled
:class:`~repro.api.ParserHost` artifacts are built lazily on the first
request that names the grammar, through the PR-1 artifact cache when the
service has a ``cache_dir`` — so the first compile also warms the disk
artifact that pool workers later load in O(cache-read) instead of
re-analyzing.

Robustness properties:

* **Single-flight**: a stampede of N concurrent first requests for one
  grammar runs exactly one compile; the other N-1 await the same future
  (``coalesced`` counter proves it).
* **Negative caching**: a grammar that fails to compile fails *once*;
  the typed :class:`~repro.serve.errors.GrammarLoadError` is cached and
  replayed, with a :class:`~repro.cache.CacheDiagnostic` (``load-failed``)
  recorded — mirroring the PR-2 degraded-cache path.
* **Bounded capacity**: at most ``max_hosts`` compiled hosts stay
  resident (LRU); evictions emit an ``evicted`` diagnostic and a metrics
  counter so operators can see thrash instead of guessing at RSS.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.cache import CacheDiagnostic
from repro.exceptions import ArtifactFormatError
from repro.serve.errors import GrammarLoadError, UnknownGrammarError


class GrammarRegistry:
    """Name-addressed grammar store behind ``llstar serve``."""

    def __init__(self, cache_dir: Optional[str] = None,
                 max_hosts: Optional[int] = None, options=None,
                 telemetry=None):
        if max_hosts is not None and max_hosts < 1:
            raise ValueError("max_hosts must be >= 1 or None")
        self.cache_dir = cache_dir
        self.max_hosts = max_hosts
        self.options = options
        self.telemetry = telemetry
        self._sources: Dict[str, str] = {}
        self._hosts: "OrderedDict[str, object]" = OrderedDict()  # LRU
        self._failed: Dict[str, GrammarLoadError] = {}
        self._inflight: Dict[str, asyncio.Future] = {}
        #: Registry-health events (CacheDiagnostic), newest last.
        self.diagnostics: List[CacheDiagnostic] = []
        self.compiles = 0
        self.coalesced = 0

    # -- registration -----------------------------------------------------------

    def register(self, name: str, grammar_text: str) -> None:
        """Register (or replace) a grammar source.  Replacement clears
        any compiled host and cached failure for the name."""
        if not name:
            raise ValueError("grammar name must be non-empty")
        self._sources[name] = grammar_text
        self._hosts.pop(name, None)
        self._failed.pop(name, None)

    def names(self) -> List[str]:
        return sorted(self._sources)

    def source(self, name: str) -> str:
        try:
            return self._sources[name]
        except KeyError:
            raise UnknownGrammarError(
                "unknown grammar %r (registered: %s)"
                % (name, ", ".join(self.names()) or "none")) from None

    def status(self) -> dict:
        """JSON-safe registry view for the /grammars endpoint."""
        return {
            "grammars": {
                name: ("ready" if name in self._hosts else
                       "failed" if name in self._failed else
                       "compiling" if name in self._inflight else "lazy")
                for name in self.names()},
            "resident_hosts": len(self._hosts),
            # Hosts whose flat tables are zero-copy views of an mmap-ed
            # ``.llt`` sidecar (shared page cache across processes).
            "mmap_backed_hosts": sum(
                1 for h in self._hosts.values()
                if getattr(h, "mapped_artifact", None) is not None),
            "max_hosts": self.max_hosts,
            "compiles": self.compiles,
            "coalesced": self.coalesced,
            "diagnostics": [repr(d) for d in self.diagnostics[-20:]],
        }

    # -- diagnostics ------------------------------------------------------------

    def _note(self, kind: str, name: str, detail: str) -> None:
        self.diagnostics.append(CacheDiagnostic(kind, name, detail))
        if self.telemetry is not None:
            self.telemetry.record_cache("registry-" + kind, name, detail)
            self.telemetry.metrics.counter(
                "llstar_serve_registry_events_total",
                "registry artifact-health events",
                labels={"event": kind}).inc()

    # -- host resolution --------------------------------------------------------

    async def host(self, name: str):
        """The compiled host for ``name``; compiles on first use.

        Concurrent callers for the same not-yet-compiled grammar share
        one compile (single-flight).  Raises
        :class:`UnknownGrammarError` / :class:`GrammarLoadError`.
        """
        source = self.source(name)  # raises UnknownGrammarError
        host = self._hosts.get(name)
        if host is not None:
            self._hosts.move_to_end(name)
            return host
        failed = self._failed.get(name)
        if failed is not None:
            raise failed
        future = self._inflight.get(name)
        if future is None:
            # The compile runs as an independent task so that the first
            # caller being cancelled (dropped connection) cannot strand
            # the coalesced waiters on a never-resolved future.
            future = asyncio.ensure_future(self._compile(name, source))
            self._inflight[name] = future
        else:
            self.coalesced += 1
        # Shield: one waiter's cancellation must not kill the compile
        # every other waiter is parked on.
        return await asyncio.shield(future)

    async def _compile(self, name: str, source: str):
        from repro.api import compile_grammar

        loop = asyncio.get_running_loop()
        self.compiles += 1
        try:
            # Compiles run in the default thread executor: static
            # analysis can take hundreds of ms and must not freeze the
            # event loop (health checks keep answering mid-compile).
            host = await loop.run_in_executor(
                None, lambda: compile_grammar(
                    source, name=name, options=self.options,
                    cache_dir=self.cache_dir, telemetry=self.telemetry))
        except ArtifactFormatError as e:
            # A damaged artifact is a cache fault, not a grammar fault:
            # surface it as 422 with a ``corrupt`` diagnostic, but do NOT
            # negative-cache — the store evicted the entry, so the next
            # request recompiles cleanly instead of replaying the error.
            self._note(CacheDiagnostic.CORRUPT, name,
                       "%s: %s" % (type(e).__name__, e))
            error = GrammarLoadError(
                "grammar %r artifact is corrupt: %s" % (name, e))
            error.__cause__ = e
            self._inflight.pop(name, None)
            raise error
        except Exception as e:
            self._note(CacheDiagnostic.LOAD_FAILED, name,
                       "%s: %s" % (type(e).__name__, e))
            error = GrammarLoadError(
                "grammar %r failed to load: %s" % (name, e))
            error.__cause__ = e
            self._failed[name] = error
            self._inflight.pop(name, None)
            raise error
        self._inflight.pop(name, None)
        self._admit_host(name, host)
        return host

    def _admit_host(self, name: str, host) -> None:
        self._hosts[name] = host
        self._hosts.move_to_end(name)
        while self.max_hosts is not None and len(self._hosts) > self.max_hosts:
            evicted, _ = self._hosts.popitem(last=False)
            self._note(CacheDiagnostic.EVICTED, evicted,
                       "capacity %d reached admitting %r"
                       % (self.max_hosts, name))

    def __repr__(self):
        return "GrammarRegistry(%d grammars, %d resident)" % (
            len(self._sources), len(self._hosts))
