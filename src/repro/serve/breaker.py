"""Per-grammar circuit breaker: fail fast while a dependency is sick.

The serve layer runs many grammars behind one admission queue.  One
pathological grammar — whose parses keep killing workers or blowing
budgets — would otherwise occupy the queue with doomed work and starve
the healthy grammars.  The breaker converts a streak of such *resource*
failures (never plain syntax errors, which are properties of the input)
into fast, typed :class:`~repro.serve.errors.CircuitOpenError` rejections
until a cooldown passes, then lets a limited number of half-open probes
test whether the fault has cleared.

State machine::

    CLOSED --(threshold consecutive failures)--> OPEN
    OPEN   --(cooldown elapsed)---------------> HALF_OPEN
    HALF_OPEN --(probe succeeds)--------------> CLOSED
    HALF_OPEN --(probe fails)-----------------> OPEN (cooldown restarts)

The clock is injectable so tests drive the cooldown deterministically.
Thread-safe: the service may record outcomes from executor callbacks.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

from repro.serve.errors import CircuitOpenError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding for /metrics (one number per state).
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure breaker guarding one grammar.

    ``threshold``
        Consecutive resource failures that open the circuit.
    ``cooldown``
        Seconds the circuit stays open before probing.
    ``half_open_probes``
        Concurrent requests admitted while half-open; the rest are
        rejected until a probe settles.
    """

    def __init__(self, name: str = "", threshold: int = 5,
                 cooldown: float = 5.0, half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[Callable[[str, str, str], None]] = None):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.name = name
        self.threshold = threshold
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._probes = 0  # in-flight half-open probes
        #: Transition history ``(from, to)`` — test/debug visibility.
        self.transitions: List[Tuple[str, str]] = []

    # -- state ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        """Current state with the open->half-open clock edge applied."""
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.cooldown):
            self._transition(HALF_OPEN)
        return self._state

    def _transition(self, to: str) -> None:
        if self._state == to:
            return
        frm, self._state = self._state, to
        if to == HALF_OPEN:
            self._probes = 0
        self.transitions.append((frm, to))
        if self._on_transition is not None:
            self._on_transition(self.name, frm, to)

    def retry_after(self) -> float:
        """Seconds until the circuit will next admit a probe."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    # -- request lifecycle ------------------------------------------------------

    def admit(self) -> None:
        """Gate one request; raises :class:`CircuitOpenError` when the
        circuit will not take it.  Every admitted request MUST later
        call exactly one of :meth:`record_success` /
        :meth:`record_failure` / :meth:`record_ignored`."""
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return
            if state == HALF_OPEN and self._probes < self.half_open_probes:
                self._probes += 1
                return
            raise CircuitOpenError(
                "circuit for grammar %r is %s after %d consecutive "
                "resource failure(s)" % (self.name, state, self._consecutive),
                retry_after=max(
                    0.1, self.cooldown - (self._clock() - self._opened_at))
                if state == OPEN else 0.1)

    def record_success(self) -> None:
        with self._lock:
            self._consecutive = 0
            if self._state == HALF_OPEN:
                self._probes = max(0, self._probes - 1)
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """A resource failure (worker crash, budget blowout) — syntax
        errors in user input must NOT be recorded here."""
        with self._lock:
            self._consecutive += 1
            if self._state == HALF_OPEN:
                self._probes = max(0, self._probes - 1)
                self._opened_at = self._clock()
                self._transition(OPEN)
            elif self._state == CLOSED and self._consecutive >= self.threshold:
                self._opened_at = self._clock()
                self._transition(OPEN)

    def record_ignored(self) -> None:
        """The request settled without evidence either way (it was shed
        after admission, or the grammar failed to compile); releases a
        half-open probe slot without moving the state."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes = max(0, self._probes - 1)

    def __repr__(self):
        return "CircuitBreaker(%s %s, %d/%d failures)" % (
            self.name, self.state, self._consecutive, self.threshold)
