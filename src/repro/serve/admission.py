"""Admission control: bounded concurrency, bounded queue, load shedding.

The saturation failure mode of an unprotected server is unbounded queue
growth: every request eventually gets served, seconds too late for
anyone to still want the answer.  The controller enforces two bounds —
``max_concurrency`` requests executing, at most ``queue_limit`` more
waiting — and sheds anything beyond them *immediately* with a typed
:class:`~repro.serve.errors.SheddingError` (HTTP 429 + ``Retry-After``),
keeping latency for admitted requests flat no matter the offered load.

Deadline propagation starts here: a request whose absolute deadline
expires while still queued is rejected without ever executing, so queue
wait is charged against the same budget as the parse itself.

Health probes never pass through this module — the service routes
``/healthz`` ahead of admission so saturation cannot make the process
look dead.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Optional

from repro.exceptions import BudgetExceededError
from repro.serve.errors import SheddingError


class AdmissionController:
    """Semaphore + bounded waiting room for one service.

    Not thread-safe: lives on the service's event loop like everything
    else in the asyncio layer.
    """

    def __init__(self, max_concurrency: int = 8, queue_limit: int = 32,
                 retry_after: float = 1.0,
                 clock: Callable[[], float] = time.monotonic):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_concurrency = max_concurrency
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        self._clock = clock
        self._sem = asyncio.Semaphore(max_concurrency)
        self.queued = 0       # admitted but waiting for a slot
        self.executing = 0    # holding a slot
        self.peak_queued = 0
        self.shed_total = 0

    @property
    def saturated(self) -> bool:
        return self.queued >= self.queue_limit

    def _shed(self) -> SheddingError:
        self.shed_total += 1
        # Scale the hint with how deep the backlog is: a caller told to
        # retry into the same wall of traffic just sheds again.
        depth = self.queued / max(1, self.queue_limit)
        return SheddingError(
            "request queue full (%d executing, %d queued, limit %d)"
            % (self.executing, self.queued, self.queue_limit),
            retry_after=self.retry_after * max(1.0, depth))

    async def acquire(self, deadline_at: Optional[float] = None) -> None:
        """Admit one request, waiting (bounded) for an execution slot.

        Raises :class:`SheddingError` when the waiting room is full and
        :class:`~repro.exceptions.BudgetExceededError` when
        ``deadline_at`` expires before a slot frees up.
        """
        if self._sem.locked() and self.queued >= self.queue_limit:
            raise self._shed()
        self.queued += 1
        self.peak_queued = max(self.peak_queued, self.queued)
        try:
            timeout = None
            if deadline_at is not None:
                timeout = deadline_at - self._clock()
                if timeout <= 0:
                    raise BudgetExceededError(
                        "deadline", deadline_at,
                        spent="expired while queued")
            try:
                await asyncio.wait_for(self._sem.acquire(), timeout)
            except asyncio.TimeoutError:
                raise BudgetExceededError(
                    "deadline", deadline_at,
                    spent="expired while queued") from None
        finally:
            self.queued -= 1
        self.executing += 1

    def release(self) -> None:
        self.executing -= 1
        self._sem.release()

    def __repr__(self):
        return ("AdmissionController(%d/%d executing, %d/%d queued, "
                "%d shed)" % (self.executing, self.max_concurrency,
                              self.queued, self.queue_limit, self.shed_total))
