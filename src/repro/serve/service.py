"""The fault-tolerant parse service behind ``llstar serve``.

:class:`ParseService` is transport-agnostic: HTTP and stdio both feed
requests into :meth:`ParseService.handle` and render the returned
:class:`Response`.  The service composes every robustness layer the repo
has grown:

* multi-grammar :class:`~repro.serve.registry.GrammarRegistry` with
  single-flight lazy compiles through the artifact cache;
* per-request deadline propagation — the client timeout (clamped by a
  server ceiling) becomes one absolute monotonic deadline stamped at
  admission and enforced through queue wait, lex, parse, and recovery
  via :meth:`~repro.runtime.budget.ParserBudget.with_deadline_at`;
* :class:`~repro.serve.admission.AdmissionController` load shedding
  (429 + ``Retry-After`` under saturation, 503 while draining);
* a per-grammar :class:`~repro.serve.breaker.CircuitBreaker` that opens
  after consecutive worker crashes / budget blowouts and recovers
  through half-open probes;
* graceful degradation: when the worker pool keeps dying, the service
  falls back to inline parsing at reduced concurrency, emits a
  :class:`~repro.runtime.profiler.DegradationEvent`, and periodically
  probes whether a fresh pool survives;
* live Prometheus ``/metrics``, ``/healthz`` + ``/readyz``, and a
  graceful drain used by the SIGTERM handler.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import json
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional

from repro.exceptions import BudgetExceededError
from repro.runtime.budget import ParserBudget
from repro.runtime.profiler import DegradationEvent
from repro.runtime.telemetry import LATENCY_BUCKETS, ParseTelemetry
from repro.serve.admission import AdmissionController
from repro.serve.breaker import STATE_CODES, CircuitBreaker
from repro.serve.errors import (
    BadRequestError,
    DrainingError,
    RequestTooLargeError,
    ServeError,
)
from repro.serve.registry import GrammarRegistry
from repro.serve.worker import ParseTask, execute_parse, serve_parse

#: error_type values that charge the circuit breaker (resource events);
#: recognition errors are properties of the *input* and never count.
RESOURCE_FAILURES = frozenset(
    ["BudgetExceededError", "WorkerCrashError", "RecursionError"])


class ServiceConfig:
    """Tunables for one service instance (all have serving defaults)."""

    def __init__(self,
                 jobs: int = 0,
                 max_concurrency: int = 8,
                 queue_limit: int = 32,
                 deadline_ceiling: float = 30.0,
                 default_deadline: float = 10.0,
                 breaker_threshold: int = 5,
                 breaker_cooldown: float = 5.0,
                 half_open_probes: int = 1,
                 degrade_concurrency: int = 2,
                 pool_rebuild_limit: int = 1,
                 pool_retry_cooldown: float = 30.0,
                 max_body_bytes: int = 1 << 20,
                 drain_deadline: float = 10.0,
                 retry_after: float = 1.0,
                 recover_default: bool = True,
                 use_tables: bool = True,
                 budget: Optional[ParserBudget] = None,
                 cache_dir: Optional[str] = None,
                 max_hosts: Optional[int] = None):
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = inline execution)")
        if deadline_ceiling <= 0 or default_deadline <= 0:
            raise ValueError("deadlines must be > 0")
        if degrade_concurrency < 1:
            raise ValueError("degrade_concurrency must be >= 1")
        self.jobs = jobs
        self.max_concurrency = max_concurrency
        self.queue_limit = queue_limit
        self.deadline_ceiling = deadline_ceiling
        self.default_deadline = default_deadline
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.half_open_probes = half_open_probes
        self.degrade_concurrency = degrade_concurrency
        self.pool_rebuild_limit = pool_rebuild_limit
        self.pool_retry_cooldown = pool_retry_cooldown
        self.max_body_bytes = max_body_bytes
        self.drain_deadline = drain_deadline
        self.retry_after = retry_after
        self.recover_default = recover_default
        self.use_tables = use_tables
        # Base resource limits applied to every request; the per-request
        # absolute deadline is clamped in on top of these.
        self.budget = budget if budget is not None else ParserBudget.defensive(
            deadline_seconds=None)
        self.cache_dir = cache_dir
        self.max_hosts = max_hosts


class ParseRequest:
    """Validated body of ``POST /parse``."""

    __slots__ = ("grammar", "text", "rule", "recover", "timeout", "tree")

    def __init__(self, grammar: str, text: str, rule: Optional[str] = None,
                 recover: bool = True, timeout: Optional[float] = None,
                 tree: bool = False):
        self.grammar = grammar
        self.text = text
        self.rule = rule
        self.recover = recover
        self.timeout = timeout
        self.tree = tree

    @classmethod
    def from_body(cls, body: bytes, config: ServiceConfig) -> "ParseRequest":
        """Parse + validate; every malformation is a typed 400."""
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as e:
            raise BadRequestError("request body is not valid JSON: %s" % e)
        if not isinstance(doc, dict):
            raise BadRequestError("request body must be a JSON object")
        grammar = doc.get("grammar")
        text = doc.get("text")
        if not isinstance(grammar, str) or not grammar:
            raise BadRequestError("'grammar' must be a non-empty string")
        if not isinstance(text, str):
            raise BadRequestError("'text' must be a string")
        rule = doc.get("rule")
        if rule is not None and not isinstance(rule, str):
            raise BadRequestError("'rule' must be a string when present")
        recover = doc.get("recover", config.recover_default)
        if not isinstance(recover, bool):
            raise BadRequestError("'recover' must be a boolean")
        tree = doc.get("tree", False)
        if not isinstance(tree, bool):
            raise BadRequestError("'tree' must be a boolean")
        timeout = doc.get("timeout")
        if timeout is not None:
            if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) \
                    or timeout <= 0:
                raise BadRequestError("'timeout' must be a positive number "
                                      "of seconds")
        unknown = set(doc) - {"grammar", "text", "rule", "recover",
                              "timeout", "tree"}
        if unknown:
            raise BadRequestError("unknown field(s): %s"
                                  % ", ".join(sorted(unknown)))
        return cls(grammar, text, rule, recover,
                   float(timeout) if timeout is not None else None, tree)


class Response:
    """Transport-agnostic response: JSON dict or pre-rendered text."""

    __slots__ = ("status", "body", "content_type", "retry_after")

    def __init__(self, status: int, body, content_type: str = "application/json",
                 retry_after: Optional[float] = None):
        self.status = status
        self.body = body
        self.content_type = content_type
        self.retry_after = retry_after

    def body_bytes(self) -> bytes:
        if isinstance(self.body, (bytes, bytearray)):
            return bytes(self.body)
        if isinstance(self.body, str):
            return self.body.encode("utf-8")
        return (json.dumps(self.body, sort_keys=True) + "\n").encode("utf-8")


class ParseService:
    """One long-lived parse service instance (one event loop)."""

    def __init__(self, registry: Optional[GrammarRegistry] = None,
                 config: Optional[ServiceConfig] = None,
                 telemetry: Optional[ParseTelemetry] = None,
                 chaos=None, clock=time.monotonic):
        self.config = config or ServiceConfig()
        self.telemetry = telemetry or ParseTelemetry(capture_events=False)
        self.metrics = self.telemetry.metrics
        self.registry = registry or GrammarRegistry(
            cache_dir=self.config.cache_dir, max_hosts=self.config.max_hosts,
            telemetry=self.telemetry)
        if self.registry.telemetry is None:
            self.registry.telemetry = self.telemetry
        self.chaos = chaos
        self._clock = clock
        self.admission = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            queue_limit=self.config.queue_limit,
            retry_after=self.config.retry_after, clock=clock)
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.draining = False
        self.degraded = False
        self.started_at = time.monotonic()
        self.pool_rebuilds = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_down_at: Optional[float] = None
        self._inline: Optional[ThreadPoolExecutor] = None
        self._request_ids = itertools.count(1)
        #: DegradationEvents emitted by the service layer, newest last.
        self.events: List[DegradationEvent] = []
        m = self.metrics
        self._req_seconds = m.histogram(
            "llstar_serve_request_seconds", "parse request latency",
            buckets=LATENCY_BUCKETS)
        self._tokens_total = m.counter(
            "llstar_serve_parse_tokens_total", "tokens lexed by the service")
        self._degraded_gauge = m.gauge(
            "llstar_serve_degraded",
            "1 while pool execution is degraded to inline")
        self._queue_peak = m.gauge(
            "llstar_serve_queue_peak", "high-water mark of the request queue")

    # -- executors --------------------------------------------------------------

    def _ensure_executors(self) -> None:
        if self._inline is None:
            # Inline is the primary engine when jobs=0 and the reduced-
            # concurrency fallback when the pool is degraded.
            workers = (self.config.max_concurrency if self.config.jobs == 0
                       else self.config.degrade_concurrency)
            self._inline = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="llstar-serve-inline")
        if self._pool is None and self.config.jobs > 0 and not self.degraded:
            self._pool = ProcessPoolExecutor(max_workers=self.config.jobs)

    def close(self) -> None:
        """Synchronous teardown of executors (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._inline is not None:
            self._inline.shutdown(wait=False, cancel_futures=True)
            self._inline = None

    # -- breaker plumbing -------------------------------------------------------

    def breaker(self, grammar: str) -> CircuitBreaker:
        breaker = self.breakers.get(grammar)
        if breaker is None:
            breaker = self.breakers[grammar] = CircuitBreaker(
                name=grammar, threshold=self.config.breaker_threshold,
                cooldown=self.config.breaker_cooldown,
                half_open_probes=self.config.half_open_probes,
                clock=self._clock, on_transition=self._on_breaker_transition)
        return breaker

    def _on_breaker_transition(self, name: str, frm: str, to: str) -> None:
        self.metrics.counter(
            "llstar_serve_breaker_transitions_total",
            "circuit state changes", labels={"to": to}).inc()
        self.metrics.gauge(
            "llstar_serve_breaker_state",
            "0 closed / 1 open / 2 half-open", labels={"grammar": name}
        ).set(STATE_CODES[to])

    # -- degradation ------------------------------------------------------------

    def _note_pool_death(self, error: BaseException) -> None:
        """A pooled parse lost its process pool: rebuild within the
        allowance, otherwise degrade to inline execution."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.pool_rebuilds += 1
        self.metrics.counter("llstar_serve_pool_rebuilds_total",
                             "worker pools torn down after death").inc()
        if self.pool_rebuilds > self.config.pool_rebuild_limit:
            self._enter_degraded(
                "worker pool died %d time(s) (last: %s); parsing inline at "
                "concurrency %d" % (self.pool_rebuilds, error,
                                    self.config.degrade_concurrency))
        # else: _ensure_executors builds the replacement pool on demand.

    def _enter_degraded(self, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        self._pool_down_at = self._clock()
        self._degraded_gauge.set(1)
        event = DegradationEvent(-1, "<serve>", reason)
        self.events.append(event)
        self.telemetry.record_degradation(event)

    def _leave_degraded(self) -> None:
        # During a recovery probe `degraded` is already cleared but
        # `_pool_down_at` still marks the episode; either signals there
        # is a degradation to leave.
        if not self.degraded and self._pool_down_at is None:
            return
        self.degraded = False
        self._pool_down_at = None
        self.pool_rebuilds = 0
        self._degraded_gauge.set(0)
        event = DegradationEvent(-1, "<serve>", "worker pool recovered")
        self.events.append(event)
        self.telemetry.record_degradation(event)

    def _should_probe_pool(self) -> bool:
        return (self.degraded and self.config.jobs > 0
                and self._pool_down_at is not None
                and self._clock() - self._pool_down_at
                >= self.config.pool_retry_cooldown)

    # -- request execution ------------------------------------------------------

    async def _execute(self, task: ParseTask, host) -> dict:
        """Run one task on the pool (with one crash retry) or inline."""
        loop = asyncio.get_running_loop()
        self._ensure_executors()
        if self._should_probe_pool():
            # Cooldown elapsed: optimistically rebuild the pool; the
            # parse below is the recovery probe.
            self.degraded = False
            self._ensure_executors()
        use_pool = self._pool is not None and not self.degraded
        if use_pool:
            was_probing = self._pool_down_at is not None
            try:
                outcome = await loop.run_in_executor(
                    self._pool, serve_parse, task)
            except (BrokenProcessPool, RuntimeError) as e:
                if was_probing:
                    # The probe pool died too: back to degraded, restart
                    # the cooldown, serve this request inline.
                    self._enter_degraded("pool recovery probe failed: %s" % e)
                    self._pool_down_at = self._clock()
                else:
                    self._note_pool_death(e)
                    self._ensure_executors()
                    if self._pool is not None:
                        # One retry on the rebuilt pool.
                        try:
                            return await loop.run_in_executor(
                                self._pool, serve_parse, task)
                        except (BrokenProcessPool, RuntimeError) as e2:
                            self._note_pool_death(e2)
            else:
                if was_probing:
                    self._leave_degraded()
                return outcome
        # Inline path: primary (jobs=0) or degraded fallback.  The shared
        # telemetry object is thread-safe, so inline parses feed /metrics
        # directly; pooled parses report via their outcome dicts instead.
        self._ensure_executors()
        run = functools.partial(execute_parse, task, host=host,
                                telemetry=self.telemetry, in_worker=False)
        return await loop.run_in_executor(self._inline, run)

    async def _handle_parse(self, body: bytes) -> Response:
        started = time.perf_counter()
        if len(body) > self.config.max_body_bytes:
            raise RequestTooLargeError(
                "request body %d bytes exceeds limit %d"
                % (len(body), self.config.max_body_bytes))
        request = ParseRequest.from_body(body, self.config)
        if self.draining:
            raise DrainingError("service is draining; try another replica",
                                retry_after=self.config.retry_after)
        # One absolute deadline for the request's whole life: queue wait,
        # lex, parse, and recovery all race the same clamped instant.
        timeout = min(request.timeout or self.config.default_deadline,
                      self.config.deadline_ceiling)
        deadline_at = time.monotonic() + timeout
        grammar_text = self.registry.source(request.grammar)  # 404 early
        breaker = self.breaker(request.grammar)
        breaker.admit()  # CircuitOpenError -> 503 + Retry-After
        settled = False
        try:
            try:
                await self.admission.acquire(deadline_at)
            except (ServeError, BudgetExceededError):
                breaker.record_ignored()  # shed, not evidence of health
                settled = True
                raise
            try:
                host = None
                if self.config.jobs == 0 or self.degraded:
                    # Inline execution parses on the registry host
                    # (single-flight compile); pool workers warm-start
                    # themselves from the artifact cache instead.
                    host = await self.registry.host(request.grammar)
                elif self.config.cache_dir is not None:
                    # Ensure the artifact exists on disk before workers
                    # try to load it (also single-flight).
                    host = await self.registry.host(request.grammar)
                request_id = "req-%d" % next(self._request_ids)
                task = ParseTask(
                    request_id, grammar_text, request.grammar,
                    self.config.cache_dir, request.text,
                    rule_name=request.rule, recover=request.recover,
                    budget=self.config.budget.with_deadline_at(deadline_at),
                    want_tree=request.tree, use_tables=self.config.use_tables,
                    chaos=self.chaos)
                outcome = await self._execute(task, host)
            finally:
                self.admission.release()
        except ServeError:
            if not settled:
                # GrammarLoadError etc.: deterministic grammar fault, not
                # evidence the infrastructure is sick.
                breaker.record_ignored()
                settled = True
            raise
        except BudgetExceededError:
            if not settled:
                breaker.record_failure()
                settled = True
            raise
        # Settle the breaker on the outcome: resource failures count,
        # recognition outcomes (the input's fault) do not.
        if outcome["error_type"] in RESOURCE_FAILURES:
            breaker.record_failure()
        else:
            breaker.record_success()
        self._queue_peak.track_max(self.admission.peak_queued)
        elapsed = time.perf_counter() - started
        self._req_seconds.observe(elapsed)
        self._tokens_total.inc(outcome["tokens"])
        return self._outcome_response(request, outcome, elapsed)

    def _outcome_response(self, request: ParseRequest, outcome: dict,
                          elapsed: float) -> Response:
        self.metrics.counter(
            "llstar_serve_parse_outcomes_total", "parse results by kind",
            labels={"outcome": self._outcome_kind(outcome)}).inc()
        body = {"ok": outcome["ok"], "grammar": request.grammar,
                "tokens": outcome["tokens"],
                "elapsed": round(outcome["elapsed"], 6),
                "service_elapsed": round(elapsed, 6),
                "worker_pid": outcome["worker_pid"],
                "degraded": self.degraded}
        if outcome["error_type"] == "BudgetExceededError":
            body.update(error_type=outcome["error_type"],
                        error=outcome["error"])
            return Response(504, body)
        if outcome["error_type"] in ("WorkerCrashError", "RecursionError"):
            body.update(error_type=outcome["error_type"],
                        error=outcome["error"])
            return Response(503, body,
                            retry_after=self.config.retry_after)
        if outcome["error_type"] is not None:  # recognition/lex failure
            body.update(error_type=outcome["error_type"],
                        error=outcome["error"])
            return Response(200, body)
        if outcome["syntax_errors"]:
            body.update(error_type="RecognitionError",
                        syntax_errors=outcome["syntax_errors"])
            return Response(200, body)
        if outcome["tree"] is not None:
            body["tree"] = outcome["tree"]
        return Response(200, body)

    @staticmethod
    def _outcome_kind(outcome: dict) -> str:
        if outcome["ok"]:
            return "ok"
        if outcome["error_type"] in ("BudgetExceededError",):
            return "budget"
        if outcome["error_type"] in ("WorkerCrashError", "RecursionError"):
            return "crash"
        return "syntax-error"

    # -- auxiliary endpoints ----------------------------------------------------

    def _handle_health(self) -> Response:
        # Liveness must stay cheap and unconditional: it is routed ahead
        # of admission control so saturation can never fail it.
        return Response(200, {
            "status": "ok",
            "uptime": round(time.monotonic() - self.started_at, 3),
            "draining": self.draining,
            "degraded": self.degraded,
        })

    def _handle_ready(self) -> Response:
        if self.draining:
            return Response(503, {"status": "draining"},
                            retry_after=self.config.retry_after)
        return Response(200, {
            "status": "ready",
            "degraded": self.degraded,
            "grammars": self.registry.names(),
        })

    def _handle_metrics(self) -> Response:
        # Refresh sampled gauges at scrape time.
        self.metrics.gauge("llstar_serve_queue_depth",
                           "requests waiting for an execution slot"
                           ).set(self.admission.queued)
        self.metrics.gauge("llstar_serve_inflight",
                           "requests executing").set(self.admission.executing)
        self.metrics.counter("llstar_serve_shed_total",
                             "requests shed by admission control"
                             ).value = self.admission.shed_total
        for name, breaker in self.breakers.items():
            self.metrics.gauge(
                "llstar_serve_breaker_state",
                "0 closed / 1 open / 2 half-open",
                labels={"grammar": name}).set(STATE_CODES[breaker.state])
        return Response(200, self.metrics.to_prometheus(),
                        content_type="text/plain; version=0.0.4")

    # -- dispatch ---------------------------------------------------------------

    async def handle(self, method: str, path: str, body: bytes = b"") -> Response:
        """Transport-agnostic dispatch.  Never raises: every failure is
        rendered as a typed JSON response."""
        route = "%s %s" % (method, path)
        try:
            if method == "GET" and path == "/healthz":
                response = self._handle_health()
            elif method == "GET" and path == "/readyz":
                response = self._handle_ready()
            elif method == "GET" and path == "/metrics":
                response = self._handle_metrics()
            elif method == "GET" and path == "/grammars":
                response = Response(200, self.registry.status())
            elif method == "POST" and path == "/parse":
                response = await self._handle_parse(body)
                route = "POST /parse"
            else:
                response = Response(404, {
                    "ok": False, "error_type": "NotFound",
                    "error": "no route %s %s" % (method, path)})
        except ServeError as e:
            response = Response(e.status, e.to_body(), retry_after=e.retry_after)
        except BudgetExceededError as e:
            response = Response(504, {
                "ok": False, "error_type": "BudgetExceededError",
                "error": str(e)})
        except asyncio.CancelledError:
            raise
        except Exception as e:  # last-resort guard: typed, never raw
            response = Response(500, {
                "ok": False, "error_type": "InternalError",
                "error": "%s: %s" % (type(e).__name__, e)})
            self.metrics.counter("llstar_serve_internal_errors_total",
                                 "unexpected handler exceptions").inc()
        self.metrics.counter(
            "llstar_serve_requests_total", "requests by route and status",
            labels={"route": route, "status": str(response.status)}).inc()
        return response

    # -- drain ------------------------------------------------------------------

    async def drain(self, deadline: Optional[float] = None) -> bool:
        """Stop accepting parses, wait (bounded) for in-flight work.

        Returns True when everything finished inside the drain deadline;
        False when work was still running at the cutoff.  Idempotent.
        """
        self.draining = True
        cutoff = time.monotonic() + (deadline if deadline is not None
                                     else self.config.drain_deadline)
        while self.admission.executing > 0 or self.admission.queued > 0:
            if time.monotonic() >= cutoff:
                self.close()
                return False
            await asyncio.sleep(0.01)
        self.close()
        return True
