"""Minimal asyncio HTTP/1.1 transport for :class:`ParseService`.

The container ships no third-party HTTP stack, so this is a small,
deliberately boring HTTP/1.1 server over ``asyncio.start_server``: parse
a request line + headers, read a ``Content-Length`` body, dispatch to
:meth:`ParseService.handle`, write one JSON (or Prometheus-text)
response.  Keep-alive is supported; chunked transfer encoding and
pipelining beyond what keep-alive implies are not.

Robustness rules the chaos suite holds it to:

* malformed HTTP or bodies over the limit produce a typed 4xx, never an
  unhandled exception, never a silent hang;
* per-read timeouts bound slowloris-style dribble;
* :meth:`HttpServer.shutdown` stops accepting, drains in-flight parses
  through the service's bounded drain, then closes lingering
  connections — the SIGTERM path of ``llstar serve``.
"""

from __future__ import annotations

import asyncio
import math
from typing import Optional, Set, Tuple

from repro.serve.errors import BadRequestError, RequestTooLargeError
from repro.serve.service import ParseService, Response

REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

_MAX_HEADER_LINE = 8192
_MAX_HEADERS = 64


class HttpServer:
    """One listening socket in front of one :class:`ParseService`."""

    def __init__(self, service: ParseService, host: str = "127.0.0.1",
                 port: int = 0, read_timeout: float = 10.0):
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; .port holds the bound port after start()
        self.read_timeout = read_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self.connections_total = 0

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def shutdown(self, drain_deadline: Optional[float] = None) -> bool:
        """Graceful stop: close the listener, drain in-flight work
        (bounded), then drop any idle keep-alive connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        drained = await self.service.drain(drain_deadline)
        for writer in list(self._writers):
            writer.close()
        return drained

    # -- request plumbing -------------------------------------------------------

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        self.connections_total += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except (BadRequestError, RequestTooLargeError) as e:
                    # Typed 4xx, then close: the framing is unreliable.
                    await self._write(writer, "HTTP/1.1",
                                      Response(e.status, e.to_body()),
                                      keep_alive=False)
                    return
                except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                        ConnectionError):
                    return  # idle keep-alive expiry / peer went away
                if parsed is None:
                    return  # clean close between requests
                method, path, version, headers, body = parsed
                response = await self.service.handle(method, path, body)
                keep_alive = (version == "HTTP/1.1"
                              and headers.get("connection", "") != "close"
                              and self._server is not None)
                try:
                    await self._write(writer, version, response, keep_alive)
                except ConnectionError:
                    return
                if not keep_alive:
                    return
        except asyncio.CancelledError:
            # Connection torn down (shutdown closed the transport while
            # we waited for the next request) — nobody awaits this task,
            # so swallow instead of spamming the loop's exception hook.
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One framed request, or None at clean EOF.  Raises typed
        :class:`BadRequestError` / :class:`RequestTooLargeError` on any
        framing problem."""
        line = await asyncio.wait_for(reader.readline(), self.read_timeout)
        if not line:
            return None
        if len(line) > _MAX_HEADER_LINE:
            raise BadRequestError("request line too long")
        try:
            text = line.decode("latin-1").rstrip("\r\n")
            method, path, version = text.split(" ", 2)
        except ValueError:
            raise BadRequestError("malformed request line") from None
        if version not in ("HTTP/1.0", "HTTP/1.1"):
            raise BadRequestError("unsupported protocol %r" % version)
        headers = {}
        while True:
            if len(headers) > _MAX_HEADERS:
                raise BadRequestError("too many headers")
            line = await asyncio.wait_for(reader.readline(), self.read_timeout)
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise BadRequestError("connection closed mid-headers")
            if len(line) > _MAX_HEADER_LINE:
                raise BadRequestError("header line too long")
            try:
                name, value = line.decode("latin-1").split(":", 1)
            except (UnicodeDecodeError, ValueError):
                raise BadRequestError("malformed header line") from None
            headers[name.strip().lower()] = value.strip()
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
                if length < 0:
                    raise ValueError
            except ValueError:
                raise BadRequestError(
                    "invalid Content-Length %r"
                    % headers["content-length"]) from None
            # Reject oversized bodies before buffering them.
            limit = self.service.config.max_body_bytes
            if length > limit:
                raise RequestTooLargeError(
                    "declared body %d bytes exceeds limit %d" % (length, limit))
            if length:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self.read_timeout)
        elif "transfer-encoding" in headers:
            raise BadRequestError("chunked transfer encoding not supported; "
                                  "send Content-Length")
        return method, path, version, headers, body

    async def _write(self, writer: asyncio.StreamWriter, version: str,
                     response: Response, keep_alive: bool) -> None:
        body = response.body_bytes()
        reason = REASONS.get(response.status, "Unknown")
        head = ["%s %d %s" % (version, response.status, reason),
                "Content-Type: %s" % response.content_type,
                "Content-Length: %d" % len(body),
                "Connection: %s" % ("keep-alive" if keep_alive else "close")]
        if response.retry_after is not None:
            head.append("Retry-After: %d"
                        % max(1, math.ceil(response.retry_after)))
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()


async def serve_http(service: ParseService, host: str = "127.0.0.1",
                     port: int = 0) -> Tuple[HttpServer, asyncio.Task]:
    """Start a server and its accept loop; returns both so callers (CLI,
    tests) can await/cancel the loop and call ``shutdown()``."""
    server = HttpServer(service, host=host, port=port)
    await server.start()
    task = asyncio.ensure_future(server.serve_forever())
    return server, task
