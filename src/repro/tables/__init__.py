"""Flat-table execution core: one dense, versioned representation of
lookahead DFAs and lexer DFAs shared by the interpreter, the lexer, the
compiled-artifact cache, and the code generator.

The object models (:mod:`repro.analysis.dfa_model`,
:mod:`repro.lexgen.dfa`) remain the *analysis-time* representation —
subset construction, ambiguity resolution, and diagnostics all build and
inspect object graphs.  The single ``compile_*`` boundary here turns a
finished automaton into parallel int arrays (CSR-style per-state ranges
over sorted keys, walked with :func:`bisect.bisect_left`), which is what
every *execution-time* consumer runs against:

* :class:`~repro.runtime.parser.LLStarParser` walks
  :class:`DecisionTable` arrays in ``_adaptive_predict`` — no per-step
  dict lookups or attribute chases, and no allocation in the inner loop;
* the tokenizer walks :class:`LexerTable` character-range arrays;
* :mod:`repro.cache` serializes :class:`TableSet` directly (schema v2),
  so an artifact stores exactly what the runtime executes;
* :mod:`repro.codegen` embeds the same ``TableSet`` dict in generated
  modules and drives prediction through one shared routine.

Semantic contexts (predicate gates) are interned once per grammar in a
:class:`SemCtxPool`; tables reference them by index, so identical
hoisted gates across decisions serialize once and evaluate through the
same live objects.

``TABLE_FORMAT_VERSION`` stamps every serialized ``TableSet``; readers
reject unknown versions, and :data:`repro.cache.SCHEMA_VERSION` bumps
alongside it.
"""

from repro.tables.lexer import LexerTable, compile_lexer_table
from repro.tables.lookahead import DecisionTable, compile_decision_table
from repro.tables.pool import SemCtxPool
from repro.tables.ranges import find_interval_index, find_sorted_key
from repro.tables.tableset import TABLE_FORMAT_VERSION, TableSet

__all__ = [
    "TABLE_FORMAT_VERSION",
    "DecisionTable",
    "LexerTable",
    "SemCtxPool",
    "TableSet",
    "compile_decision_table",
    "compile_lexer_table",
    "find_interval_index",
    "find_sorted_key",
]
