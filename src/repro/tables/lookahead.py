"""Dense flat-table form of one decision's lookahead DFA.

A :class:`DecisionTable` is the execution-time twin of
:class:`repro.analysis.dfa_model.DFA`: the same automaton, flattened
into parallel int tuples.  The flat arrays are the *stored* form — what
the artifact cache serializes and codegen embeds; at prediction time an
:meth:`~DecisionTable.execution_index` is derived from them once (a
one-probe fast map for fixed-k=1 decisions plus per-state transition
dicts), which is what the interpreter and generated parsers walk.

Encoding (states are ``0..n_states-1``, matching DFA state ids):

* ``edge_index[s] : edge_index[s+1]`` is state ``s``'s row in the two
  parallel arrays ``edge_keys`` (sorted token types) and
  ``edge_targets`` (target state per key) — CSR over the token alphabet;
* ``accept_alt[s]`` is the predicted 1-based alternative for an accept
  state, 0 otherwise (alternatives are never 0, so one array encodes
  both ``is_accept`` and ``predicted_alt``);
* ``pred_index[s] : pred_index[s+1]`` is the state's row in the ordered
  predicate-edge arrays: ``pred_ctx`` (index into the grammar's
  :class:`~repro.tables.pool.SemCtxPool`, or -1 for the default
  ordered-choice edge), ``pred_alt`` (alternative the edge predicts) and
  ``pred_target`` (target state id, kept only for lossless round trips —
  prediction returns at the first passing gate).

Analysis metadata the classifier and diagnostics read (overflow flags,
recursive alternatives, statically resolved alternatives, fallback
markers) rides along unflattened — it is sparse, cold, and never touched
during prediction.

The encoding is lossless: :meth:`DecisionTable.to_dfa` reconstructs an
object-graph DFA whose ``to_dict`` form is bit-identical to the one the
table was compiled from, which is what lets the artifact cache store
*only* the flat form.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.dfa_model import DFA
from repro.exceptions import ArtifactFormatError
from repro.tables.pool import SemCtxPool


def _row(values) -> Tuple[int, ...]:
    """Freeze one stored array: lists (JSON deserialization) become
    tuples; ``memoryview`` rows (zero-copy mmap slices, already
    immutable and int-indexed) are kept as-is so loading never copies
    the mapped pages."""
    return values if isinstance(values, memoryview) else tuple(values)


class DecisionTable:
    """Flat form of one lookahead DFA; see the module docstring."""

    __slots__ = (
        "decision", "rule_name", "num_alternatives", "start", "n_states",
        "edge_index", "edge_keys", "edge_targets", "accept_alt",
        "pred_index", "pred_ctx", "pred_alt", "pred_target",
        "overflow_states", "recursive", "resolved_alts",
        "had_overflow", "fell_back_to_ll1", "gave_up_reason", "pool",
        "_exec",
    )

    def __init__(self, decision: int, rule_name: str, num_alternatives: int,
                 start: int, n_states: int,
                 edge_index: Tuple[int, ...], edge_keys: Tuple[int, ...],
                 edge_targets: Tuple[int, ...], accept_alt: Tuple[int, ...],
                 pred_index: Tuple[int, ...], pred_ctx: Tuple[int, ...],
                 pred_alt: Tuple[int, ...], pred_target: Tuple[int, ...],
                 overflow_states: Tuple[int, ...],
                 recursive: Tuple[Tuple[int, Tuple[int, ...]], ...],
                 resolved_alts: Tuple[int, ...],
                 had_overflow: bool, fell_back_to_ll1: bool,
                 gave_up_reason: Optional[str], pool: SemCtxPool):
        self.decision = decision
        self.rule_name = rule_name
        self.num_alternatives = num_alternatives
        self.start = start  # -1 when the DFA has no start state
        self.n_states = n_states
        self.edge_index = edge_index
        self.edge_keys = edge_keys
        self.edge_targets = edge_targets
        self.accept_alt = accept_alt
        self.pred_index = pred_index
        self.pred_ctx = pred_ctx
        self.pred_alt = pred_alt
        self.pred_target = pred_target
        self.overflow_states = overflow_states
        self.recursive = recursive
        self.resolved_alts = resolved_alts
        self.had_overflow = had_overflow
        self.fell_back_to_ll1 = fell_back_to_ll1
        self.gave_up_reason = gave_up_reason
        self.pool = pool
        self._exec = None  # lazily built execution index, never serialized

    def execution_index(self):
        """Derived dict form of the token edges for the interpreter's hot
        loop: ``(fast, rows)``.

        ``fast`` maps a lookahead token straight to the predicted
        alternative whenever one DFA step resolves the decision — the
        start state's edges whose target is an accept state, i.e. the
        fixed-``k``\\ =1 case the paper's Table 2 shows dominates real
        grammars.  A hit costs one dict probe.  ``rows[s]`` is state
        ``s``'s ``token -> target`` dict for the full walk (CPython dict
        probes beat a bisect over the CSR row).  Built once per table on
        first prediction; the flat arrays stay the stored form.
        """
        exec_index = self._exec
        if exec_index is None:
            edge_index = self.edge_index
            rows = [dict(zip(self.edge_keys[edge_index[s]:edge_index[s + 1]],
                             self.edge_targets[edge_index[s]:edge_index[s + 1]]))
                    for s in range(self.n_states)]
            fast = {}
            accept_alt = self.accept_alt
            if self.start >= 0 and accept_alt[self.start] == 0:
                for token, target in rows[self.start].items():
                    alt = accept_alt[target]
                    if alt > 0:
                        fast[token] = alt
            exec_index = self._exec = (fast, rows)
        return exec_index

    # -- shape queries (classification parity with the object model) ------------

    def successors(self, state: int) -> Tuple[int, ...]:
        return self.edge_targets[self.edge_index[state]:self.edge_index[state + 1]]

    def is_cyclic(self) -> bool:
        """True when the token-edge graph reachable from start has a cycle."""
        if self.start < 0:
            return False
        color = [0] * self.n_states  # 0 white, 1 on stack, 2 done
        stack: List[Tuple[int, int]] = [(self.start, self.edge_index[self.start])]
        color[self.start] = 1
        edge_index, edge_targets = self.edge_index, self.edge_targets
        while stack:
            state, cursor = stack[-1]
            if cursor == edge_index[state + 1]:
                color[state] = 2
                stack.pop()
                continue
            stack[-1] = (state, cursor + 1)
            nxt = edge_targets[cursor]
            c = color[nxt]
            if c == 1:
                return True
            if c == 0:
                color[nxt] = 1
                stack.append((nxt, edge_index[nxt]))
        return False

    def fixed_k(self) -> Optional[int]:
        """Max token-edge depth from start if acyclic (min 1); None if cyclic."""
        if self.start < 0:
            return None
        if self.is_cyclic():
            return None
        edge_index, edge_targets = self.edge_index, self.edge_targets
        # Iterative post-order over the reachable subgraph, then longest
        # path by relaxing edges in reverse finish order (same DP as
        # DFA.fixed_k, so the reported k is identical).
        order: List[int] = []
        seen = [False] * self.n_states
        stack: List[Tuple[int, int]] = [(self.start, edge_index[self.start])]
        seen[self.start] = True
        while stack:
            state, cursor = stack[-1]
            if cursor == edge_index[state + 1]:
                order.append(state)
                stack.pop()
                continue
            stack[-1] = (state, cursor + 1)
            nxt = edge_targets[cursor]
            if not seen[nxt]:
                seen[nxt] = True
                stack.append((nxt, edge_index[nxt]))
        depth = [0] * self.n_states
        best = 0
        for state in reversed(order):
            d = depth[state]
            for cursor in range(edge_index[state], edge_index[state + 1]):
                nxt = edge_targets[cursor]
                if d + 1 > depth[nxt]:
                    depth[nxt] = d + 1
            if d > best:
                best = d
        return max(best, 1)

    def uses_backtracking(self) -> bool:
        flags = self.pool.synpred_flags
        return any(c >= 0 and flags[c] for c in self.pred_ctx)

    def has_predicate_edges(self) -> bool:
        return len(self.pred_ctx) > 0

    def reachable_alts(self) -> set:
        alts = {a for a in self.accept_alt if a > 0}
        alts.update(self.pred_alt)
        return alts

    def unreachable_alts(self) -> set:
        return set(range(1, self.num_alternatives + 1)) - self.reachable_alts()

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form; context indexes refer to the enclosing
        :class:`~repro.tables.tableset.TableSet`'s pool."""
        return {
            "decision": self.decision,
            "rule": self.rule_name,
            "n_alts": self.num_alternatives,
            "start": self.start,
            "n_states": self.n_states,
            "edge_index": list(self.edge_index),
            "edge_keys": list(self.edge_keys),
            "edge_targets": list(self.edge_targets),
            "accept_alt": list(self.accept_alt),
            "pred_index": list(self.pred_index),
            "pred_ctx": list(self.pred_ctx),
            "pred_alt": list(self.pred_alt),
            "pred_target": list(self.pred_target),
            "overflow_states": list(self.overflow_states),
            "recursive": [[s, list(alts)] for s, alts in self.recursive],
            "resolved_alts": list(self.resolved_alts),
            "had_overflow": self.had_overflow,
            "fell_back_to_ll1": self.fell_back_to_ll1,
            "gave_up_reason": self.gave_up_reason,
        }

    @classmethod
    def from_dict(cls, data: dict, pool: SemCtxPool,
                  validate: bool = True) -> "DecisionTable":
        """Rebuild from the stored form.  ``validate=False`` skips the
        O(states + edges) structural sweep — safe only for sources with
        their own integrity guarantee (the checksummed mmap image, whose
        writer validated at compile time); JSON entries, which anyone
        can edit, always validate."""
        table = cls(
            data["decision"], data["rule"], data["n_alts"], data["start"],
            data["n_states"],
            _row(data["edge_index"]), _row(data["edge_keys"]),
            _row(data["edge_targets"]), _row(data["accept_alt"]),
            _row(data["pred_index"]), _row(data["pred_ctx"]),
            _row(data["pred_alt"]), _row(data["pred_target"]),
            tuple(data["overflow_states"]),
            tuple((s, tuple(alts)) for s, alts in data["recursive"]),
            tuple(data["resolved_alts"]),
            data["had_overflow"], data["fell_back_to_ll1"],
            data["gave_up_reason"], pool)
        if validate:
            table.validate()
        return table

    def validate(self) -> None:
        """Structural integrity; raises
        :class:`~repro.exceptions.ArtifactFormatError` (a ``ValueError``
        subclass) on a damaged table."""
        n = self.n_states
        if len(self.accept_alt) != n:
            raise ArtifactFormatError("accept_alt length %d != %d states"
                                      % (len(self.accept_alt), n))
        for name, index, keys in (("edge", self.edge_index, self.edge_keys),
                                  ("pred", self.pred_index, self.pred_ctx)):
            if len(index) != n + 1 or index[0] != 0 or index[-1] != len(keys):
                raise ArtifactFormatError("bad %s_index row pointers" % name)
            if any(index[i] > index[i + 1] for i in range(n)):
                raise ArtifactFormatError("non-monotone %s_index" % name)
        if len(self.edge_targets) != len(self.edge_keys):
            raise ArtifactFormatError("edge arrays disagree in length")
        if (len(self.pred_alt) != len(self.pred_ctx)
                or len(self.pred_target) != len(self.pred_ctx)):
            raise ArtifactFormatError("predicate arrays disagree in length")
        for s in range(n):
            row = self.edge_keys[self.edge_index[s]:self.edge_index[s + 1]]
            if any(row[i] >= row[i + 1] for i in range(len(row) - 1)):
                raise ArtifactFormatError("unsorted edge keys in state %d" % s)
        if any(not (0 <= t < n) for t in self.edge_targets):
            raise ArtifactFormatError("edge target out of range")
        if any(not (0 <= t < n) for t in self.pred_target):
            raise ArtifactFormatError("predicate target out of range")
        if any(c != -1 and not (0 <= c < len(self.pool)) for c in self.pred_ctx):
            raise ArtifactFormatError("context index out of pool range")
        if not (self.start == -1 or 0 <= self.start < n):
            raise ArtifactFormatError("start state out of range")

    # -- lossless decompilation back to the object model -------------------------

    def to_dfa(self) -> DFA:
        """Rebuild the analysis-time DFA (bit-identical ``to_dict`` form).

        Semantic-context objects are shared with the pool, not copied —
        gates are immutable once analysis finishes.
        """
        dfa = DFA(self.decision, self.rule_name, self.num_alternatives)
        for _ in range(self.n_states):
            dfa.new_state()
        contexts = self.pool.contexts
        for s in range(self.n_states):
            state = dfa.states[s]
            alt = self.accept_alt[s]
            if alt > 0:
                state.is_accept = True
                state.predicted_alt = alt
            for i in range(self.edge_index[s], self.edge_index[s + 1]):
                state.edges[self.edge_keys[i]] = dfa.states[self.edge_targets[i]]
            for i in range(self.pred_index[s], self.pred_index[s + 1]):
                ctx = contexts[self.pred_ctx[i]] if self.pred_ctx[i] >= 0 else None
                state.predicate_edges.append(
                    (ctx, self.pred_alt[i], dfa.states[self.pred_target[i]]))
        for s in self.overflow_states:
            dfa.states[s].overflowed = True
        for s, alts in self.recursive:
            dfa.states[s].recursive_alts = set(alts)
        if self.start >= 0:
            dfa.start = dfa.states[self.start]
        dfa.statically_resolved_alts = set(self.resolved_alts)
        dfa.had_overflow = self.had_overflow
        dfa.fell_back_to_ll1 = self.fell_back_to_ll1
        dfa.gave_up_reason = self.gave_up_reason
        return dfa

    def equivalent_to(self, dfa: DFA) -> bool:
        """Exact representation equivalence against an object-graph DFA."""
        return self.to_dfa().to_dict() == dfa.to_dict()

    def __repr__(self):
        return "DecisionTable(decision %d in %s: %d states, %d edges)" % (
            self.decision, self.rule_name, self.n_states, len(self.edge_keys))


def compile_decision_table(dfa: DFA, pool: SemCtxPool) -> DecisionTable:
    """The one object-model -> flat-table boundary for lookahead DFAs."""
    edge_index: List[int] = [0]
    edge_keys: List[int] = []
    edge_targets: List[int] = []
    pred_index: List[int] = [0]
    pred_ctx: List[int] = []
    pred_alt: List[int] = []
    pred_target: List[int] = []
    accept_alt: List[int] = []
    overflow_states: List[int] = []
    recursive: List[Tuple[int, Tuple[int, ...]]] = []
    for position, state in enumerate(dfa.states):
        if state.id != position:
            raise ValueError("non-contiguous DFA state ids (state %d at %d)"
                             % (state.id, position))
        if state.is_accept:
            if not state.predicted_alt:
                raise ValueError("accept state %d has no predicted alt" % state.id)
            accept_alt.append(state.predicted_alt)
        else:
            accept_alt.append(0)
        for token_type, target in sorted(state.edges.items()):
            edge_keys.append(token_type)
            edge_targets.append(target.id)
        edge_index.append(len(edge_keys))
        # Predicate edges keep their *evaluation order* — ordered choice.
        for ctx, alt, target in state.predicate_edges:
            pred_ctx.append(pool.add(ctx) if ctx is not None else -1)
            pred_alt.append(alt)
            pred_target.append(target.id)
        pred_index.append(len(pred_ctx))
        if state.overflowed:
            overflow_states.append(state.id)
        if state.recursive_alts:
            recursive.append((state.id, tuple(sorted(state.recursive_alts))))
    return DecisionTable(
        dfa.decision, dfa.rule_name, dfa.num_alternatives,
        dfa.start.id if dfa.start is not None else -1, len(dfa.states),
        tuple(edge_index), tuple(edge_keys), tuple(edge_targets),
        tuple(accept_alt), tuple(pred_index), tuple(pred_ctx),
        tuple(pred_alt), tuple(pred_target), tuple(overflow_states),
        tuple(recursive), tuple(sorted(dfa.statically_resolved_alts)),
        dfa.had_overflow, dfa.fell_back_to_ll1, dfa.gave_up_reason, pool)
