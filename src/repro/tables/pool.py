"""Interned semantic-context pool.

Hoisted predicate gates (:class:`~repro.analysis.semctx.SemanticContext`
trees) recur across DFA states and across decisions — every PEG-mode
decision in a rule tends to carry the same synpred gate.  The pool
interns each distinct tree once per grammar; flat tables then reference
gates by small int index, so

* the artifact cache serializes each gate exactly once,
* the runtime evaluates every occurrence through the same live object,
* and ``contains_synpred`` (needed to classify a decision as
  backtracking) is computed once per gate, not once per edge.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.semctx import SemanticContext, context_from_dict
from repro.exceptions import ArtifactFormatError


class SemCtxPool:
    """Append-only interning pool of semantic-context trees."""

    __slots__ = ("contexts", "synpred_flags", "_index")

    def __init__(self):
        self.contexts: List[SemanticContext] = []
        #: parallel to ``contexts``: True when the gate contains a synpred
        #: leaf (evaluating it speculates).
        self.synpred_flags: List[bool] = []
        self._index: Dict[SemanticContext, int] = {}

    def add(self, ctx: SemanticContext) -> int:
        """Intern ``ctx``; returns its pool index."""
        existing = self._index.get(ctx)
        if existing is not None:
            return existing
        idx = len(self.contexts)
        self.contexts.append(ctx)
        self.synpred_flags.append(ctx.contains_synpred)
        self._index[ctx] = idx
        return idx

    def get(self, index: int) -> SemanticContext:
        return self.contexts[index]

    def __len__(self) -> int:
        return len(self.contexts)

    def to_dict(self) -> dict:
        """JSON-safe form (``synpred_flags`` are re-derived on load)."""
        return {"contexts": [c.to_dict() for c in self.contexts]}

    @classmethod
    def from_dict(cls, data: dict) -> "SemCtxPool":
        pool = cls()
        for cd in data["contexts"]:
            pool.add(context_from_dict(cd))
        if len(pool) != len(data["contexts"]):
            # Interning collapsed entries the writer kept distinct; table
            # indexes into this pool would silently alias. A well-formed
            # artifact never contains duplicates (the writer interned).
            raise ArtifactFormatError("semantic-context pool contains duplicates")
        return pool

    def __repr__(self):
        return "SemCtxPool(%d contexts)" % len(self.contexts)
