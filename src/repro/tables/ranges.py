"""Shared sorted-range lookup helpers for the flat-table encodings.

Every table in :mod:`repro.tables` stores its edges the same way: one
flat array of sorted keys (token types, or character-range low points)
plus a parallel target array, with per-state ``[row_start, row_end)``
ranges carried in a CSR-style index array.  These two helpers are the
single lookup idiom over that encoding — the lexer DFA walk (tokenizer
and :meth:`repro.lexgen.dfa.LexerDFAState.next_state`) and table
validation call (or inline) them, so range-boundary semantics live in
exactly one place.  Parser decision tables instead derive dict-based
execution indexes from the same arrays (token alphabets are exact-match,
not ranges; see :meth:`repro.tables.lookahead.DecisionTable.execution_index`).

Both are thin wrappers over :func:`bisect.bisect_right` on plain int
arrays: no tuples are built per probe (the old lexer lookup bisected a
list of ``(lo, hi)`` pairs, allocating a probe tuple and comparing
tuples on every character).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence


def find_sorted_key(keys: Sequence[int], key: int, lo: int, hi: int) -> int:
    """Index of ``key`` within ``keys[lo:hi]`` (sorted, unique), else -1."""
    i = bisect_left(keys, key, lo, hi)
    if i < hi and keys[i] == key:
        return i
    return -1


def find_interval_index(los: Sequence[int], his: Sequence[int], point: int,
                        lo: int, hi: int) -> int:
    """Index of the interval containing ``point`` among the sorted,
    disjoint intervals ``zip(los, his)[lo:hi]`` (inclusive bounds), or -1.

    Boundary semantics: a point equal to an interval's ``lo`` or ``hi``
    is inside it; a point between two intervals, below the first ``lo``,
    or above the last ``hi`` is not.
    """
    i = bisect_right(los, point, lo, hi) - 1
    if i >= lo and point <= his[i]:
        return i
    return -1
