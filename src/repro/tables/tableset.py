"""The versioned bundle every consumer ships: pool + decision tables
(+ optional lexer table).

One :class:`TableSet` is the complete execution core for a compiled
grammar.  The artifact cache serializes it verbatim (inside the schema-v2
payload), the code generator embeds its dict form in generated modules,
and both rebuild the identical live tables through :meth:`from_dict`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.exceptions import ArtifactFormatError
from repro.tables.lexer import LexerTable
from repro.tables.lookahead import DecisionTable
from repro.tables.pool import SemCtxPool

#: Version of the flat-table encoding.  Any change to the array layout of
#: DecisionTable/LexerTable/SemCtxPool dicts must bump this (and with it
#: :data:`repro.cache.SCHEMA_VERSION`); readers reject unknown versions.
TABLE_FORMAT_VERSION = 1


class TableSet:
    """All flat tables for one grammar, sharing one interned gate pool."""

    __slots__ = ("pool", "decisions", "lexer")

    def __init__(self, pool: SemCtxPool, decisions: List[DecisionTable],
                 lexer: Optional[LexerTable] = None):
        self.pool = pool
        self.decisions = decisions
        self.lexer = lexer

    def to_dict(self) -> dict:
        return {
            "version": TABLE_FORMAT_VERSION,
            "pool": self.pool.to_dict(),
            "decisions": [t.to_dict() for t in self.decisions],
            "lexer": self.lexer.to_dict() if self.lexer is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict, validate: bool = True) -> "TableSet":
        version = data.get("version")
        if version != TABLE_FORMAT_VERSION:
            raise ArtifactFormatError("table format %r != %d"
                                      % (version, TABLE_FORMAT_VERSION))
        pool = SemCtxPool.from_dict(data["pool"])
        decisions = [DecisionTable.from_dict(d, pool, validate=validate)
                     for d in data["decisions"]]
        lexer = (LexerTable.from_dict(data["lexer"], validate=validate)
                 if data.get("lexer") is not None else None)
        return cls(pool, decisions, lexer)

    def __repr__(self):
        return "TableSet(%d decisions%s, %d pooled contexts)" % (
            len(self.decisions),
            ", lexer" if self.lexer is not None else "",
            len(self.pool))
