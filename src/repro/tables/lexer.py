"""Dense flat-table form of the lexer DFA.

Same CSR idiom as :class:`~repro.tables.lookahead.DecisionTable`, over
character intervals instead of token types:

* ``edge_index[s] : edge_index[s+1]`` is state ``s``'s row in the three
  parallel arrays ``edge_lo`` / ``edge_hi`` (sorted disjoint inclusive
  codepoint ranges) and ``edge_targets``;
* ``accept_idx[s]`` indexes the deduplicated ``accepts`` pool of
  ``(priority, rule_name, commands)`` labels, -1 for non-accept states.

The tokenizer's maximal-munch loop walks these arrays directly;
:meth:`LexerTable.to_lexer_dfa` reconstructs the object model losslessly
for diagnostics and the v1-artifact upgrade path.

For the ASCII range — which dominates real source corpora — the interval
bisect per character is replaced by alphabet compression:
:meth:`LexerTable.ascii_index` derives (lazily, mirroring
:meth:`~repro.tables.lookahead.DecisionTable.execution_index`) codepoint
*equivalence classes* from the union of all interval boundaries below
128.  Two ASCII codepoints land in the same class exactly when every
state moves them to the same target, so the tokenizer does two array
indexes per character (``class_of[cp]``, then the state's dense class
row) instead of a ``bisect_right``; codepoints >= 128 keep the interval
bisect.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Tuple

from repro.exceptions import ArtifactFormatError
from repro.tables.lookahead import _row
from repro.tables.ranges import find_interval_index

#: Exclusive upper bound of the alphabet-compressed fast path: dense
#: class tables cover codepoints < 128, everything above bisects ranges.
ASCII_LIMIT = 128


class LexerTable:
    """Flat form of a whole lexer DFA."""

    __slots__ = ("start", "n_states", "edge_index", "edge_lo", "edge_hi",
                 "edge_targets", "accept_idx", "accepts", "_ascii")

    def __init__(self, start: int, n_states: int,
                 edge_index: Tuple[int, ...], edge_lo: Tuple[int, ...],
                 edge_hi: Tuple[int, ...], edge_targets: Tuple[int, ...],
                 accept_idx: Tuple[int, ...],
                 accepts: Tuple[Tuple[int, str, Tuple[str, ...]], ...]):
        self.start = start
        self.n_states = n_states
        self.edge_index = edge_index
        self.edge_lo = edge_lo
        self.edge_hi = edge_hi
        self.edge_targets = edge_targets
        self.accept_idx = accept_idx
        self.accepts = accepts
        self._ascii = None  # lazily derived class index, never serialized

    def ascii_index(self):
        """Derived alphabet-compressed index for the ASCII fast path:
        ``(class_of, class_rows)``.

        ``class_of[cp]`` maps each codepoint < 128 to its equivalence
        class: the elementary intervals cut by every edge boundary in the
        table, so all codepoints of one class take the same transition in
        *every* state.  ``class_rows[s][c]`` is state ``s``'s target for
        class ``c`` (-1 when stuck).  Two array indexes replace the
        per-character interval bisect; built once per table on first
        tokenize, and the CSR arrays stay the stored form.
        """
        index = self._ascii
        if index is None:
            # Every lo (and hi+1) below the limit starts a new elementary
            # interval; 0 and the limit itself bound the class universe.
            marks = {0, ASCII_LIMIT}
            for lo, hi in zip(self.edge_lo, self.edge_hi):
                if lo < ASCII_LIMIT:
                    marks.add(lo)
                if hi < ASCII_LIMIT - 1:
                    marks.add(hi + 1)
            marks = sorted(marks)
            n_classes = len(marks) - 1
            class_of = []
            for c in range(n_classes):
                class_of.extend([c] * (marks[c + 1] - marks[c]))
            rows: List[Tuple[int, ...]] = []
            for s in range(self.n_states):
                row = [-1] * n_classes
                for e in range(self.edge_index[s], self.edge_index[s + 1]):
                    lo = self.edge_lo[e]
                    if lo >= ASCII_LIMIT:
                        break  # row intervals are sorted: the rest are non-ASCII
                    hi = min(self.edge_hi[e], ASCII_LIMIT - 1)
                    target = self.edge_targets[e]
                    # [lo, hi] is a union of elementary classes by construction.
                    c = bisect_left(marks, lo)
                    while marks[c] <= hi:
                        row[c] = target
                        c += 1
                rows.append(tuple(row))
            index = self._ascii = (tuple(class_of), tuple(rows))
        return index

    def next_state(self, state: int, codepoint: int) -> int:
        """Target state for one character, or -1 (stuck).  The tokenizer
        inlines this walk; the method exists for tests and tools."""
        i = find_interval_index(self.edge_lo, self.edge_hi, codepoint,
                                self.edge_index[state],
                                self.edge_index[state + 1])
        return self.edge_targets[i] if i >= 0 else -1

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "n_states": self.n_states,
            "edge_index": list(self.edge_index),
            "edge_lo": list(self.edge_lo),
            "edge_hi": list(self.edge_hi),
            "edge_targets": list(self.edge_targets),
            "accept_idx": list(self.accept_idx),
            "accepts": [[p, name, list(commands)]
                        for p, name, commands in self.accepts],
        }

    @classmethod
    def from_dict(cls, data: dict, validate: bool = True) -> "LexerTable":
        """Rebuild from the stored form; ``validate=False`` (checksummed
        mmap sources only) skips the structural sweep, mirroring
        :meth:`~repro.tables.lookahead.DecisionTable.from_dict`."""
        table = cls(
            data["start"], data["n_states"],
            _row(data["edge_index"]), _row(data["edge_lo"]),
            _row(data["edge_hi"]), _row(data["edge_targets"]),
            _row(data["accept_idx"]),
            tuple((p, name, tuple(commands))
                  for p, name, commands in data["accepts"]))
        if validate:
            table.validate()
        return table

    def validate(self) -> None:
        n = self.n_states
        if len(self.accept_idx) != n:
            raise ArtifactFormatError("accept_idx length %d != %d states"
                                      % (len(self.accept_idx), n))
        if (len(self.edge_index) != n + 1 or self.edge_index[0] != 0
                or self.edge_index[-1] != len(self.edge_lo)):
            raise ArtifactFormatError("bad edge_index row pointers")
        if any(self.edge_index[i] > self.edge_index[i + 1] for i in range(n)):
            raise ArtifactFormatError("non-monotone edge_index")
        if (len(self.edge_hi) != len(self.edge_lo)
                or len(self.edge_targets) != len(self.edge_lo)):
            raise ArtifactFormatError("edge arrays disagree in length")
        for s in range(n):
            row_lo = self.edge_lo[self.edge_index[s]:self.edge_index[s + 1]]
            row_hi = self.edge_hi[self.edge_index[s]:self.edge_index[s + 1]]
            for i, (lo, hi) in enumerate(zip(row_lo, row_hi)):
                if lo > hi:
                    raise ArtifactFormatError("inverted interval in state %d" % s)
                if i and row_hi[i - 1] >= lo:
                    raise ArtifactFormatError(
                        "overlapping/unsorted intervals in state %d" % s)
        if any(not (0 <= t < n) for t in self.edge_targets):
            raise ArtifactFormatError("edge target out of range")
        if any(a != -1 and not (0 <= a < len(self.accepts))
               for a in self.accept_idx):
            raise ArtifactFormatError("accept index out of range")
        if not (0 <= self.start < n) and n:
            raise ArtifactFormatError("start state out of range")

    def to_lexer_dfa(self):
        """Rebuild the object-model :class:`~repro.lexgen.dfa.LexerDFA`
        (bit-identical ``to_dict`` form)."""
        from repro.lexgen.dfa import LexerDFA, LexerDFAState

        dfa = LexerDFA()
        dfa.start_id = self.start
        for s in range(self.n_states):
            state = LexerDFAState(s)
            row = slice(self.edge_index[s], self.edge_index[s + 1])
            state.los = list(self.edge_lo[row])
            state.his = list(self.edge_hi[row])
            state.targets = list(self.edge_targets[row])
            if self.accept_idx[s] >= 0:
                state.accept = self.accepts[self.accept_idx[s]]
            dfa.states.append(state)
        return dfa

    def __repr__(self):
        return "LexerTable(%d states, %d ranges)" % (
            self.n_states, len(self.edge_lo))


def compile_lexer_table(dfa) -> LexerTable:
    """The one object-model -> flat-table boundary for lexer DFAs."""
    edge_index: List[int] = [0]
    edge_lo: List[int] = []
    edge_hi: List[int] = []
    edge_targets: List[int] = []
    accept_idx: List[int] = []
    accepts: List[Tuple[int, str, Tuple[str, ...]]] = []
    accept_pool = {}
    for position, state in enumerate(dfa.states):
        if state.id != position:
            raise ValueError("non-contiguous lexer DFA state ids")
        edge_lo.extend(state.los)
        edge_hi.extend(state.his)
        edge_targets.extend(state.targets)
        edge_index.append(len(edge_lo))
        label: Optional[Tuple[int, str, Tuple[str, ...]]] = state.accept
        if label is None:
            accept_idx.append(-1)
        else:
            label = (label[0], label[1], tuple(label[2]))
            idx = accept_pool.get(label)
            if idx is None:
                idx = accept_pool[label] = len(accepts)
                accepts.append(label)
            accept_idx.append(idx)
    return LexerTable(dfa.start_id, len(dfa.states), tuple(edge_index),
                      tuple(edge_lo), tuple(edge_hi), tuple(edge_targets),
                      tuple(accept_idx), tuple(accepts))
